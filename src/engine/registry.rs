//! The algorithm registry: every matching algorithm in the workspace under
//! one enum, each usable as a pipeline stage.

use dsmatch_graph::stats::InstanceStats;
use dsmatch_graph::BipartiteGraph;

/// Every matching algorithm the workspace implements.
///
/// Heuristic stages sample from the **current scaling factors** in the
/// [`Workspace`](crate::engine::Workspace): the factors computed by a
/// preceding `scale` stage, or the identity (uniform sampling over
/// adjacency lists) when the pipeline has no scale stage. This makes the
/// composition explicit — the paper's `TwoSidedMatch` with 5 Sinkhorn–Knopp
/// iterations is the pipeline `scale:sk:5,two`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Paper Algorithm 2 (guarantee 1 − 1/e).
    OneSided,
    /// Paper Algorithm 3: two-sided sampling + [`KarpSipserMt`]
    /// (conjectured 0.866). Equivalent to [`KarpSipserMt`] under the same
    /// scaling, exposed separately so specs read like the paper.
    ///
    /// [`KarpSipserMt`]: AlgorithmKind::KarpSipserMt
    TwoSided,
    /// Classic Karp–Sipser heuristic.
    KarpSipser,
    /// Paper Algorithm 4: the specialized parallel Karp–Sipser, run on the
    /// 1-out ∪ 1-in subgraph sampled from the current scaling factors.
    KarpSipserMt,
    /// The §5 one-out *undirected* variant, applied to the bipartite graph
    /// viewed as one vertex class (rows and columns unified).
    OneOutUndirected,
    /// Random-edge greedy (½).
    CheapEdge,
    /// Random-vertex greedy (½ + ε).
    CheapVertex,
    /// Exact: Hopcroft–Karp.
    HopcroftKarp,
    /// Exact: Pothen–Fan with lookahead.
    PothenFan,
    /// Exact: push-relabel / auction.
    PushRelabel,
    /// Exact: single-path BFS augmentation.
    BfsAugment,
    /// Exact, multicore: Hopcroft–Karp with a parallel level-synchronized
    /// BFS phase (byte-identical to [`HopcroftKarp`] at every pool size).
    ///
    /// [`HopcroftKarp`]: AlgorithmKind::HopcroftKarp
    HopcroftKarpPar,
    /// Exact, multicore: tree-grafting-style parallel Pothen–Fan
    /// (multi-source BFS forest + disjoint-path harvest).
    PothenFanPar,
    /// Exact, multicore: incremental tree grafting — [`PothenFanPar`]'s
    /// BFS forest kept alive across harvests (Azad–Buluç–Pothen renewable
    /// forests), cutting the per-phase rebuild on high-phase-count
    /// instances.
    ///
    /// [`PothenFanPar`]: AlgorithmKind::PothenFanPar
    PothenFanGraft,
    /// Exact: statistics-driven auto-selection between [`PushRelabel`],
    /// [`HopcroftKarpPar`] and [`PothenFanGraft`] (see [`select_finisher`])
    /// — the Kaya–Langguth–Manne–Uçar (2013) finding that the winning
    /// finisher is matrix-family-dependent, as a registry entry. The
    /// choice lands in the stage report's `selected` field.
    ///
    /// [`PushRelabel`]: AlgorithmKind::PushRelabel
    /// [`HopcroftKarpPar`]: AlgorithmKind::HopcroftKarpPar
    /// [`PothenFanGraft`]: AlgorithmKind::PothenFanGraft
    Auto,
}

impl AlgorithmKind {
    /// All algorithms, heuristics first.
    pub fn all() -> [AlgorithmKind; 15] {
        use AlgorithmKind::*;
        [
            OneSided,
            TwoSided,
            KarpSipser,
            KarpSipserMt,
            OneOutUndirected,
            CheapEdge,
            CheapVertex,
            HopcroftKarp,
            PothenFan,
            PushRelabel,
            BfsAugment,
            HopcroftKarpPar,
            PothenFanPar,
            PothenFanGraft,
            Auto,
        ]
    }

    /// True for the exact (maximum-cardinality) algorithms — the only ones
    /// allowed as a pipeline's `augment` finisher.
    pub fn is_exact(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::HopcroftKarp
                | AlgorithmKind::PothenFan
                | AlgorithmKind::PushRelabel
                | AlgorithmKind::BfsAugment
                | AlgorithmKind::HopcroftKarpPar
                | AlgorithmKind::PothenFanPar
                | AlgorithmKind::PothenFanGraft
                | AlgorithmKind::Auto
        )
    }

    /// True for the algorithms that poll a
    /// [`CancelToken`](dsmatch_graph::CancelToken) inside their main loops
    /// when run through the engine, so a serve-job deadline (or a client
    /// `cancel` op) can cut them short cooperatively. The parallel
    /// finishers poll at phase/epoch boundaries; the sequential engines
    /// (`hk`, `pf`) and the Karp–Sipser family (`ks`, `ksmt`, `two`) poll
    /// periodically inside their main loops. Only the single-pass sampling
    /// heuristics (`one`, `one-out`, `cheap`, `cheap-vertex`) and `bfs`
    /// still run to completion, with their deadline enforced before start.
    pub fn supports_cancellation(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::TwoSided
                | AlgorithmKind::KarpSipser
                | AlgorithmKind::KarpSipserMt
                | AlgorithmKind::HopcroftKarp
                | AlgorithmKind::PothenFan
                | AlgorithmKind::PushRelabel
                | AlgorithmKind::HopcroftKarpPar
                | AlgorithmKind::PothenFanPar
                | AlgorithmKind::PothenFanGraft
                | AlgorithmKind::Auto
        )
    }

    /// True for the algorithms whose sampling reads the scaling factors
    /// (a preceding `scale` stage changes their behaviour).
    pub fn uses_scaling(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::OneSided
                | AlgorithmKind::TwoSided
                | AlgorithmKind::KarpSipserMt
                | AlgorithmKind::OneOutUndirected
        )
    }

    /// Short CLI/spec name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::OneSided => "one",
            AlgorithmKind::TwoSided => "two",
            AlgorithmKind::KarpSipser => "ks",
            AlgorithmKind::KarpSipserMt => "ksmt",
            AlgorithmKind::OneOutUndirected => "one-out",
            AlgorithmKind::CheapEdge => "cheap",
            AlgorithmKind::CheapVertex => "cheap-vertex",
            AlgorithmKind::HopcroftKarp => "hk",
            AlgorithmKind::PothenFan => "pf",
            AlgorithmKind::PushRelabel => "pr",
            AlgorithmKind::BfsAugment => "bfs",
            AlgorithmKind::HopcroftKarpPar => "hk-par",
            AlgorithmKind::PothenFanPar => "pf-par",
            AlgorithmKind::PothenFanGraft => "pf-graft",
            AlgorithmKind::Auto => "auto",
        }
    }
}

/// The approximate **maximum-weight** matching heuristics of the
/// `dsmatch-weighted` crate, usable as a pipeline workload stage.
///
/// A weighted stage reads the workspace's current scaling factors as edge
/// weights — the paper's probability bridge: after doubly stochastic
/// scaling, entry `s_ij = dr[i]·dc[j]` approximates the probability that
/// edge `(i, j)` belongs to a perfect matching, so maximizing total weight
/// chases the most-likely transversal. Without a preceding `scale` stage
/// the weights are uniform and the heuristics degrade gracefully to
/// cardinality-style greedy matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightedKind {
    /// Sort-by-weight greedy (the classical ½-approximation).
    GreedyWeighted,
    /// Drake–Hougardy path-growing (½-approximation).
    PathGrowing,
    /// Suitor (Manne & Halappanavar, IPDPS 2014): proposal-based; same
    /// matching as greedy under consistent tie-breaking, better locality.
    Suitor,
    /// Lock-free parallel Suitor (CAS proposals, deterministic result).
    SuitorParallel,
}

impl WeightedKind {
    /// All weighted heuristics, in spec order.
    pub fn all() -> [WeightedKind; 4] {
        use WeightedKind::*;
        [GreedyWeighted, PathGrowing, Suitor, SuitorParallel]
    }

    /// Short CLI/spec name.
    pub fn name(&self) -> &'static str {
        match self {
            WeightedKind::GreedyWeighted => "greedy-w",
            WeightedKind::PathGrowing => "path-grow",
            WeightedKind::Suitor => "suitor",
            WeightedKind::SuitorParallel => "suitor-par",
        }
    }

    /// Look up a spec name; `None` when it names no weighted heuristic
    /// (the spec parser then falls through to its unknown-stage error).
    pub fn from_name(s: &str) -> Option<WeightedKind> {
        WeightedKind::all().into_iter().find(|w| w.name() == s)
    }
}

impl std::fmt::Display for WeightedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pick the exact finisher for an instance from its shape statistics — the
/// policy behind [`AlgorithmKind::Auto`].
///
/// Kaya–Langguth–Manne–Uçar (2013) measured that no augmenting-path or
/// push-relabel solver wins across matrix families; the family signals they
/// identify map onto two cheap shape measures:
///
/// - **dense** instances (fill ≥ 5%) have short augmenting paths and wide
///   BFS levels — Hopcroft–Karp's shortest-path phases shine, so `hk-par`;
/// - **skewed** degree sequences (coefficient of variation > 1 on either
///   side, the RMAT/power-law regime) imbalance BFS forests, while
///   push-relabel's local row-by-row bidding is indifferent to hubs, so
///   `pr`;
/// - everything else — the uniform sparse regime of `gen:er` and meshes —
///   goes to the grafted Pothen–Fan forest, `pf-graft`.
///
/// The policy is deterministic, costs one O(n + m) statistics pass
/// ([`InstanceStats`]), and is pinned per generator family by the
/// engine-matrix tests.
pub fn select_finisher(g: &BipartiteGraph) -> AlgorithmKind {
    let stats = InstanceStats::of(g.csr());
    if stats.density() >= 0.05 {
        AlgorithmKind::HopcroftKarpPar
    } else if stats.degree_skew() > 1.0 {
        AlgorithmKind::PushRelabel
    } else {
        AlgorithmKind::PothenFanGraft
    }
}

impl std::str::FromStr for AlgorithmKind {
    type Err = super::spec::SpecError;

    /// Look up a spec name in the registry.
    ///
    /// ```
    /// use dsmatch::engine::{AlgorithmKind, SpecError};
    ///
    /// assert_eq!("pf-par".parse::<AlgorithmKind>(), Ok(AlgorithmKind::PothenFanPar));
    /// assert_eq!(
    ///     "nope".parse::<AlgorithmKind>(),
    ///     Err(SpecError::UnknownAlgorithm { name: "nope".into() }),
    /// );
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgorithmKind::all()
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| super::spec::SpecError::UnknownAlgorithm { name: s.to_string() })
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for a in AlgorithmKind::all() {
            let parsed: AlgorithmKind = a.name().parse().unwrap();
            assert_eq!(parsed, a);
            assert_eq!(a.to_string(), a.name());
        }
        assert!("nope".parse::<AlgorithmKind>().is_err());
    }

    #[test]
    fn exactly_eight_exact_engines() {
        assert_eq!(AlgorithmKind::all().len(), 15);
        assert_eq!(AlgorithmKind::all().iter().filter(|a| a.is_exact()).count(), 8);
        assert_eq!(AlgorithmKind::all().iter().filter(|a| a.uses_scaling()).count(), 4);
    }

    #[test]
    fn parallel_finishers_are_exact_and_unscaled() {
        for a in [
            AlgorithmKind::HopcroftKarpPar,
            AlgorithmKind::PothenFanPar,
            AlgorithmKind::PothenFanGraft,
            AlgorithmKind::Auto,
        ] {
            assert!(a.is_exact(), "{a}");
            assert!(!a.uses_scaling(), "{a}");
        }
    }

    #[test]
    fn auto_policy_is_shape_driven() {
        use dsmatch_graph::Csr;
        // Dense: every cell filled ⇒ hk-par.
        let dense =
            BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1, 1], &[1, 1, 1], &[1, 1, 1]]));
        assert_eq!(select_finisher(&dense), AlgorithmKind::HopcroftKarpPar);
        // Sparse + uniform (one diagonal) ⇒ pf-graft.
        let mut t = dsmatch_graph::TripletMatrix::new(100, 100);
        for i in 0..100 {
            t.push(i, i);
        }
        let uniform = BipartiteGraph::from_csr(t.into_csr());
        assert_eq!(select_finisher(&uniform), AlgorithmKind::PothenFanGraft);
        // Sparse + one hub column (star + diagonal) ⇒ skew > 1 ⇒ pr.
        let mut t = dsmatch_graph::TripletMatrix::new(100, 100);
        for i in 0..100 {
            t.push(i, i);
            t.push(i, 0);
        }
        let skewed = BipartiteGraph::from_csr(t.into_csr());
        assert_eq!(select_finisher(&skewed), AlgorithmKind::PushRelabel);
    }

    #[test]
    fn cancellable_algorithms_are_exactly_the_cancel_variant_engines() {
        let cancellable: Vec<&str> = AlgorithmKind::all()
            .iter()
            .filter(|k| k.supports_cancellation())
            .map(|k| k.name())
            .collect();
        assert_eq!(
            cancellable,
            ["two", "ks", "ksmt", "hk", "pf", "pr", "hk-par", "pf-par", "pf-graft", "auto"]
        );
        // The remaining engines are the single-pass sampling heuristics
        // plus `bfs` — all short enough that a pre-start deadline check
        // suffices.
        let uncancellable: Vec<&str> = AlgorithmKind::all()
            .iter()
            .filter(|k| !k.supports_cancellation())
            .map(|k| k.name())
            .collect();
        assert_eq!(uncancellable, ["one", "one-out", "cheap", "cheap-vertex", "bfs"]);
    }

    #[test]
    fn weighted_kind_roundtrip_and_names() {
        assert_eq!(WeightedKind::all().len(), 4);
        for w in WeightedKind::all() {
            let parsed = WeightedKind::from_name(w.name()).unwrap();
            assert_eq!(parsed, w);
            assert_eq!(w.to_string(), w.name());
            // Weighted names never collide with the cardinality registry.
            assert!(w.name().parse::<AlgorithmKind>().is_err(), "{} collides", w.name());
        }
        assert_eq!(WeightedKind::from_name("nope"), None);
        let names: Vec<&str> = WeightedKind::all().iter().map(|w| w.name()).collect();
        assert_eq!(names, ["greedy-w", "path-grow", "suitor", "suitor-par"]);
    }
}
