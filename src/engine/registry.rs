//! The algorithm registry: every matching algorithm in the workspace under
//! one enum, each usable as a pipeline stage.

use dsmatch_graph::stats::InstanceStats;
use dsmatch_graph::BipartiteGraph;

/// Every matching algorithm the workspace implements.
///
/// Heuristic stages sample from the **current scaling factors** in the
/// [`Workspace`](crate::engine::Workspace): the factors computed by a
/// preceding `scale` stage, or the identity (uniform sampling over
/// adjacency lists) when the pipeline has no scale stage. This makes the
/// composition explicit — the paper's `TwoSidedMatch` with 5 Sinkhorn–Knopp
/// iterations is the pipeline `scale:sk:5,two`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Paper Algorithm 2 (guarantee 1 − 1/e).
    OneSided,
    /// Paper Algorithm 3: two-sided sampling + [`KarpSipserMt`]
    /// (conjectured 0.866). Equivalent to [`KarpSipserMt`] under the same
    /// scaling, exposed separately so specs read like the paper.
    ///
    /// [`KarpSipserMt`]: AlgorithmKind::KarpSipserMt
    TwoSided,
    /// Classic Karp–Sipser heuristic.
    KarpSipser,
    /// Paper Algorithm 4: the specialized parallel Karp–Sipser, run on the
    /// 1-out ∪ 1-in subgraph sampled from the current scaling factors.
    KarpSipserMt,
    /// The §5 one-out *undirected* variant, applied to the bipartite graph
    /// viewed as one vertex class (rows and columns unified).
    OneOutUndirected,
    /// Random-edge greedy (½).
    CheapEdge,
    /// Random-vertex greedy (½ + ε).
    CheapVertex,
    /// Exact: Hopcroft–Karp.
    HopcroftKarp,
    /// Exact: Pothen–Fan with lookahead.
    PothenFan,
    /// Exact: push-relabel / auction.
    PushRelabel,
    /// Exact: single-path BFS augmentation.
    BfsAugment,
    /// Exact, multicore: Hopcroft–Karp with a parallel level-synchronized
    /// BFS phase (byte-identical to [`HopcroftKarp`] at every pool size).
    ///
    /// [`HopcroftKarp`]: AlgorithmKind::HopcroftKarp
    HopcroftKarpPar,
    /// Exact, multicore: tree-grafting-style parallel Pothen–Fan
    /// (multi-source BFS forest + disjoint-path harvest).
    PothenFanPar,
    /// Exact, multicore: incremental tree grafting — [`PothenFanPar`]'s
    /// BFS forest kept alive across harvests (Azad–Buluç–Pothen renewable
    /// forests), cutting the per-phase rebuild on high-phase-count
    /// instances.
    ///
    /// [`PothenFanPar`]: AlgorithmKind::PothenFanPar
    PothenFanGraft,
    /// Exact: statistics-driven auto-selection between [`PushRelabel`],
    /// [`HopcroftKarpPar`] and [`PothenFanGraft`] (see [`select_finisher`])
    /// — the Kaya–Langguth–Manne–Uçar (2013) finding that the winning
    /// finisher is matrix-family-dependent, as a registry entry. The
    /// choice lands in the stage report's `selected` field.
    ///
    /// [`PushRelabel`]: AlgorithmKind::PushRelabel
    /// [`HopcroftKarpPar`]: AlgorithmKind::HopcroftKarpPar
    /// [`PothenFanGraft`]: AlgorithmKind::PothenFanGraft
    Auto,
}

impl AlgorithmKind {
    /// All algorithms, heuristics first.
    pub fn all() -> [AlgorithmKind; 15] {
        use AlgorithmKind::*;
        [
            OneSided,
            TwoSided,
            KarpSipser,
            KarpSipserMt,
            OneOutUndirected,
            CheapEdge,
            CheapVertex,
            HopcroftKarp,
            PothenFan,
            PushRelabel,
            BfsAugment,
            HopcroftKarpPar,
            PothenFanPar,
            PothenFanGraft,
            Auto,
        ]
    }

    /// True for the exact (maximum-cardinality) algorithms — the only ones
    /// allowed as a pipeline's `augment` finisher.
    pub fn is_exact(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::HopcroftKarp
                | AlgorithmKind::PothenFan
                | AlgorithmKind::PushRelabel
                | AlgorithmKind::BfsAugment
                | AlgorithmKind::HopcroftKarpPar
                | AlgorithmKind::PothenFanPar
                | AlgorithmKind::PothenFanGraft
                | AlgorithmKind::Auto
        )
    }

    /// True for the algorithms that poll a
    /// [`CancelToken`](dsmatch_graph::CancelToken) at phase/epoch
    /// boundaries when run through the engine, so a serve-job deadline
    /// can cut them short cooperatively. The sequential exact engines
    /// (`hk`, `pf`, `bfs`) and the heuristics run to completion; their
    /// deadline is only enforced before they start.
    pub fn supports_cancellation(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::PushRelabel
                | AlgorithmKind::HopcroftKarpPar
                | AlgorithmKind::PothenFanPar
                | AlgorithmKind::PothenFanGraft
                | AlgorithmKind::Auto
        )
    }

    /// True for the algorithms whose sampling reads the scaling factors
    /// (a preceding `scale` stage changes their behaviour).
    pub fn uses_scaling(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::OneSided
                | AlgorithmKind::TwoSided
                | AlgorithmKind::KarpSipserMt
                | AlgorithmKind::OneOutUndirected
        )
    }

    /// Short CLI/spec name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::OneSided => "one",
            AlgorithmKind::TwoSided => "two",
            AlgorithmKind::KarpSipser => "ks",
            AlgorithmKind::KarpSipserMt => "ksmt",
            AlgorithmKind::OneOutUndirected => "one-out",
            AlgorithmKind::CheapEdge => "cheap",
            AlgorithmKind::CheapVertex => "cheap-vertex",
            AlgorithmKind::HopcroftKarp => "hk",
            AlgorithmKind::PothenFan => "pf",
            AlgorithmKind::PushRelabel => "pr",
            AlgorithmKind::BfsAugment => "bfs",
            AlgorithmKind::HopcroftKarpPar => "hk-par",
            AlgorithmKind::PothenFanPar => "pf-par",
            AlgorithmKind::PothenFanGraft => "pf-graft",
            AlgorithmKind::Auto => "auto",
        }
    }
}

/// Pick the exact finisher for an instance from its shape statistics — the
/// policy behind [`AlgorithmKind::Auto`].
///
/// Kaya–Langguth–Manne–Uçar (2013) measured that no augmenting-path or
/// push-relabel solver wins across matrix families; the family signals they
/// identify map onto two cheap shape measures:
///
/// - **dense** instances (fill ≥ 5%) have short augmenting paths and wide
///   BFS levels — Hopcroft–Karp's shortest-path phases shine, so `hk-par`;
/// - **skewed** degree sequences (coefficient of variation > 1 on either
///   side, the RMAT/power-law regime) imbalance BFS forests, while
///   push-relabel's local row-by-row bidding is indifferent to hubs, so
///   `pr`;
/// - everything else — the uniform sparse regime of `gen:er` and meshes —
///   goes to the grafted Pothen–Fan forest, `pf-graft`.
///
/// The policy is deterministic, costs one O(n + m) statistics pass
/// ([`InstanceStats`]), and is pinned per generator family by the
/// engine-matrix tests.
pub fn select_finisher(g: &BipartiteGraph) -> AlgorithmKind {
    let stats = InstanceStats::of(g.csr());
    if stats.density() >= 0.05 {
        AlgorithmKind::HopcroftKarpPar
    } else if stats.degree_skew() > 1.0 {
        AlgorithmKind::PushRelabel
    } else {
        AlgorithmKind::PothenFanGraft
    }
}

impl std::str::FromStr for AlgorithmKind {
    type Err = super::spec::SpecError;

    /// Look up a spec name in the registry.
    ///
    /// ```
    /// use dsmatch::engine::{AlgorithmKind, SpecError};
    ///
    /// assert_eq!("pf-par".parse::<AlgorithmKind>(), Ok(AlgorithmKind::PothenFanPar));
    /// assert_eq!(
    ///     "nope".parse::<AlgorithmKind>(),
    ///     Err(SpecError::UnknownAlgorithm { name: "nope".into() }),
    /// );
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgorithmKind::all()
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| super::spec::SpecError::UnknownAlgorithm { name: s.to_string() })
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for a in AlgorithmKind::all() {
            let parsed: AlgorithmKind = a.name().parse().unwrap();
            assert_eq!(parsed, a);
            assert_eq!(a.to_string(), a.name());
        }
        assert!("nope".parse::<AlgorithmKind>().is_err());
    }

    #[test]
    fn exactly_eight_exact_engines() {
        assert_eq!(AlgorithmKind::all().len(), 15);
        assert_eq!(AlgorithmKind::all().iter().filter(|a| a.is_exact()).count(), 8);
        assert_eq!(AlgorithmKind::all().iter().filter(|a| a.uses_scaling()).count(), 4);
    }

    #[test]
    fn parallel_finishers_are_exact_and_unscaled() {
        for a in [
            AlgorithmKind::HopcroftKarpPar,
            AlgorithmKind::PothenFanPar,
            AlgorithmKind::PothenFanGraft,
            AlgorithmKind::Auto,
        ] {
            assert!(a.is_exact(), "{a}");
            assert!(!a.uses_scaling(), "{a}");
        }
    }

    #[test]
    fn auto_policy_is_shape_driven() {
        use dsmatch_graph::Csr;
        // Dense: every cell filled ⇒ hk-par.
        let dense =
            BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1, 1], &[1, 1, 1], &[1, 1, 1]]));
        assert_eq!(select_finisher(&dense), AlgorithmKind::HopcroftKarpPar);
        // Sparse + uniform (one diagonal) ⇒ pf-graft.
        let mut t = dsmatch_graph::TripletMatrix::new(100, 100);
        for i in 0..100 {
            t.push(i, i);
        }
        let uniform = BipartiteGraph::from_csr(t.into_csr());
        assert_eq!(select_finisher(&uniform), AlgorithmKind::PothenFanGraft);
        // Sparse + one hub column (star + diagonal) ⇒ skew > 1 ⇒ pr.
        let mut t = dsmatch_graph::TripletMatrix::new(100, 100);
        for i in 0..100 {
            t.push(i, i);
            t.push(i, 0);
        }
        let skewed = BipartiteGraph::from_csr(t.into_csr());
        assert_eq!(select_finisher(&skewed), AlgorithmKind::PushRelabel);
    }

    #[test]
    fn cancellable_algorithms_are_exactly_the_cancel_variant_engines() {
        let cancellable: Vec<&str> = AlgorithmKind::all()
            .iter()
            .filter(|k| k.supports_cancellation())
            .map(|k| k.name())
            .collect();
        assert_eq!(cancellable, ["pr", "hk-par", "pf-par", "pf-graft", "auto"]);
        // Cancellation support implies exactness: only finishers poll tokens.
        for k in AlgorithmKind::all() {
            if k.supports_cancellation() {
                assert!(k.is_exact(), "{} supports cancellation but is not exact", k.name());
            }
        }
    }
}
