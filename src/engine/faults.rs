//! Deterministic fault injection for the serve daemon.
//!
//! The chaos tests (`tests/chaos.rs`) and the CI chaos smoke leg need to
//! provoke failures *inside* the real binary at precise, reproducible
//! points: a worker panicking mid-stage on exactly the third job, a stall
//! long enough to trip a deadline, a corrupted reply write. This module
//! reads a fault plan from the `DSMATCH_FAULTS` environment variable once
//! (on first use) and exposes cheap hook functions the serve layer calls
//! at its seams. When the variable is unset every hook is a single
//! `Option` check on a cached [`OnceLock`] — no branching on env reads,
//! no measurable cost in production.
//!
//! # Syntax
//!
//! `DSMATCH_FAULTS` is a comma-separated list of fault entries; fields
//! within an entry are separated by `:` as `key=value` pairs after the
//! fault kind:
//!
//! | entry | effect |
//! |---|---|
//! | `panic:job=3` | panic inside the worker while running the 3rd job (1-based, daemon-global submission order) |
//! | `stall:stage=finish:ms=5000` | sleep 5000 ms at the named stage (`start` or `finish`) of every job |
//! | `stall:stage=start:job=2:ms=100` | same, but only for the 2nd job |
//! | `truncate-reply:nth=2` | cut the 2nd reply line in half before writing it |
//! | `garbage-reply:nth=4` | replace the 4th reply line with garbage bytes |
//! | `cache-exhaust` | clamp the serve handle cache budget to zero (every stored handle evicts immediately) |
//!
//! Malformed entries are reported on stderr and skipped — a typo in a
//! chaos run degrades to "fault not injected", never to a crashed daemon.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// One parsed fault directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic while executing the `job`-th submitted job (1-based).
    Panic {
        /// 1-based daemon-global job ordinal to panic on.
        job: u64,
    },
    /// Sleep `ms` milliseconds at stage `stage` (`"start"` / `"finish"`)
    /// of every job, or only of job `job` when given.
    Stall {
        /// Stage name the stall is attached to.
        stage: String,
        /// Optional 1-based job ordinal filter (`None`: every job).
        job: Option<u64>,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Truncate the `nth` reply line (1-based) to half its length.
    TruncateReply {
        /// 1-based reply ordinal to corrupt.
        nth: u64,
    },
    /// Replace the `nth` reply line (1-based) with garbage.
    GarbageReply {
        /// 1-based reply ordinal to corrupt.
        nth: u64,
    },
    /// Force the serve handle-cache budget to zero bytes.
    CacheExhaust,
}

/// The full set of active faults, parsed once from `DSMATCH_FAULTS`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    jobs: AtomicU64,
    replies: AtomicU64,
}

static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();

fn plan() -> Option<&'static FaultPlan> {
    PLAN.get_or_init(|| {
        let spec = std::env::var("DSMATCH_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(FaultPlan::parse(&spec))
    })
    .as_ref()
}

impl FaultPlan {
    /// Parse a fault plan from the `DSMATCH_FAULTS` syntax. Malformed
    /// entries are skipped with a warning on stderr.
    pub fn parse(spec: &str) -> FaultPlan {
        let mut faults = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            match parse_entry(entry) {
                Some(f) => faults.push(f),
                None => {
                    eprintln!("dsmatch: ignoring malformed DSMATCH_FAULTS entry {entry:?}");
                }
            }
        }
        FaultPlan { faults, jobs: AtomicU64::new(0), replies: AtomicU64::new(0) }
    }

    /// Parsed faults, in order (for tests).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

fn parse_entry(entry: &str) -> Option<Fault> {
    let mut parts = entry.split(':');
    let kind = parts.next()?;
    let mut job = None;
    let mut stage = None;
    let mut ms = None;
    let mut nth = None;
    for field in parts {
        let (key, value) = field.split_once('=')?;
        match key {
            "job" => job = Some(value.parse::<u64>().ok()?),
            "stage" => stage = Some(value.to_string()),
            "ms" => ms = Some(value.parse::<u64>().ok()?),
            "nth" => nth = Some(value.parse::<u64>().ok()?),
            _ => return None,
        }
    }
    match kind {
        "panic" => Some(Fault::Panic { job: job? }),
        "stall" => {
            let stage = stage?;
            if stage != "start" && stage != "finish" {
                return None;
            }
            Some(Fault::Stall { stage, job, ms: ms? })
        }
        "truncate-reply" => Some(Fault::TruncateReply { nth: nth? }),
        "garbage-reply" => Some(Fault::GarbageReply { nth: nth? }),
        "cache-exhaust" => Some(Fault::CacheExhaust),
        _ => None,
    }
}

/// Claim the next daemon-global job ordinal (1-based). Returns 0 when no
/// fault plan is active so callers can skip bookkeeping entirely.
pub fn next_job() -> u64 {
    match plan() {
        Some(p) => p.jobs.fetch_add(1, Ordering::Relaxed) + 1,
        None => 0,
    }
}

/// Panic if a `panic:job=N` fault targets this job ordinal.
pub fn panic_if_due(job: u64) {
    let Some(p) = plan() else { return };
    for f in &p.faults {
        if matches!(f, Fault::Panic { job: j } if *j == job) {
            panic!("injected fault: panic at job {job}");
        }
    }
}

/// Sleep if a `stall` fault targets this stage (and job ordinal, when the
/// fault carries a `job=` filter).
pub fn stall_if_due(stage: &str, job: u64) {
    let Some(p) = plan() else { return };
    for f in &p.faults {
        if let Fault::Stall { stage: s, job: j, ms } = f {
            if s == stage && j.is_none_or(|j| j == job) {
                std::thread::sleep(Duration::from_millis(*ms));
            }
        }
    }
}

/// Corrupt a rendered reply line if a `truncate-reply`/`garbage-reply`
/// fault targets the next reply ordinal. Counts every reply the daemon
/// writes (inline and worker-produced alike).
pub fn corrupt_reply(text: &mut String) {
    let Some(p) = plan() else { return };
    if !p
        .faults
        .iter()
        .any(|f| matches!(f, Fault::TruncateReply { .. } | Fault::GarbageReply { .. }))
    {
        return;
    }
    let nth = p.replies.fetch_add(1, Ordering::Relaxed) + 1;
    for f in &p.faults {
        match f {
            Fault::TruncateReply { nth: n } if *n == nth => {
                let mut cut = text.len() / 2;
                while cut > 0 && !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                text.truncate(cut);
            }
            Fault::GarbageReply { nth: n } if *n == nth => {
                *text = "!garbage ".repeat(512);
            }
            _ => {}
        }
    }
}

/// The serve cache budget after applying any `cache-exhaust` fault.
pub fn cache_budget(configured: usize) -> usize {
    match plan() {
        Some(p) if p.faults.iter().any(|f| matches!(f, Fault::CacheExhaust)) => 0,
        _ => configured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_syntax() {
        let p = FaultPlan::parse("panic:job=3,stall:stage=finish:ms=5000,truncate-reply:nth=2");
        assert_eq!(
            p.faults(),
            &[
                Fault::Panic { job: 3 },
                Fault::Stall { stage: "finish".into(), job: None, ms: 5000 },
                Fault::TruncateReply { nth: 2 },
            ]
        );
    }

    #[test]
    fn parses_stall_with_job_filter_and_garbage() {
        let p =
            FaultPlan::parse("stall:stage=start:job=2:ms=100, garbage-reply:nth=4 ,cache-exhaust");
        assert_eq!(
            p.faults(),
            &[
                Fault::Stall { stage: "start".into(), job: Some(2), ms: 100 },
                Fault::GarbageReply { nth: 4 },
                Fault::CacheExhaust,
            ]
        );
    }

    #[test]
    fn skips_malformed_entries() {
        let p = FaultPlan::parse("panic,stall:stage=mid:ms=1,panic:job=x,wibble:job=1,panic:job=7");
        assert_eq!(p.faults(), &[Fault::Panic { job: 7 }]);
    }

    #[test]
    fn empty_spec_parses_to_no_faults() {
        assert!(FaultPlan::parse("").faults().is_empty());
        assert!(FaultPlan::parse(" , ,").faults().is_empty());
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        let p = FaultPlan { faults: vec![Fault::TruncateReply { nth: 1 }], ..Default::default() };
        // Exercise the boundary logic directly (the global hooks read env).
        let mut text = String::from("a≥b≥c≥d");
        let nth = p.replies.fetch_add(1, Ordering::Relaxed) + 1;
        for f in &p.faults {
            if let Fault::TruncateReply { nth: n } = f {
                if *n == nth {
                    let mut cut = text.len() / 2;
                    while cut > 0 && !text.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    text.truncate(cut);
                }
            }
        }
        assert!(text.len() < "a≥b≥c≥d".len());
        assert!(std::str::from_utf8(text.as_bytes()).is_ok());
    }
}
