//! Instrumented solve results: what every [`Solver`](crate::engine::Solver)
//! run returns.

use dsmatch_graph::Matching;
use dsmatch_json::Json;

/// Timing and outcome of one pipeline stage.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Stage label in spec grammar (`"scale:sk:5"`, `"two"`, `"augment:pf"`).
    pub stage: String,
    /// Wall time of the stage in seconds.
    pub seconds: f64,
    /// Matching cardinality after the stage (`None` for the scale stage).
    pub cardinality: Option<usize>,
    /// Augmenting paths applied (augment finishers and exact stages that
    /// report work counters).
    pub augmentations: Option<usize>,
    /// Search phases executed, including the final certifying phase
    /// (the Hopcroft–Karp engines and the tree-grafting `pf-par`). A warm
    /// start that is already maximum finishes in exactly one phase — the
    /// counter behind the serve daemon's cheap delta re-solves.
    pub phases: Option<usize>,
    /// For the `auto` finisher: the spec name of the exact engine its
    /// statistics policy actually ran (`None` for every other stage).
    pub selected: Option<String>,
    /// Total matching weight after a weighted stage (`None` for
    /// cardinality stages) — the quality axis of the weighted workloads,
    /// measured in the scaled-entry weights the stage optimized.
    pub weight: Option<f64>,
}

/// Result of one engine solve: the matching plus per-stage instrumentation.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The computed (verified-valid) matching.
    pub matching: Matching,
    /// One entry per executed stage, in execution order.
    pub stages: Vec<StageReport>,
    /// Scaling iterations actually performed (when a scale stage ran).
    pub scaling_iterations: Option<usize>,
    /// Final scaling error `max_j |Σ_i s_ij − 1|` (when a scale stage ran).
    pub scaling_error: Option<f64>,
    /// Quality ratio against the exact optimum; filled by
    /// [`SolveReport::set_quality`] when the caller requests it.
    pub quality: Option<f64>,
    /// True when the solve was cut short by cooperative cancellation
    /// (deadline or explicit cancel). A successful solve always reports
    /// `false`; cancelled serve jobs surface this flag on their structured
    /// `"deadline"` error reply instead of a full report.
    pub cancelled: bool,
    /// The deadline budget the job ran under, in milliseconds (`None`:
    /// no deadline). Recorded even on success so clients can correlate
    /// observed latency with the budget they requested.
    pub deadline_ms: Option<u64>,
    /// Total weight of the final matching under the solve's edge weights
    /// (`None` for pure-cardinality pipelines). Reported alongside
    /// cardinality: a weighted solve answers both "how many pairs" and
    /// "how heavy".
    pub weight: Option<f64>,
}

impl SolveReport {
    /// Cardinality of the final matching.
    pub fn cardinality(&self) -> usize {
        self.matching.cardinality()
    }

    /// Total wall time across all stages, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Record the quality ratio against the exact optimum `opt`
    /// (the paper's §4 measurement protocol).
    pub fn set_quality(&mut self, opt: usize) {
        self.quality = Some(self.matching.quality(opt));
    }

    /// Machine-readable form (the CLI's `--json` payload per solve).
    pub fn to_json(&self) -> Json {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("stage", Json::from(s.stage.as_str())),
                    ("seconds", Json::from(s.seconds)),
                    ("cardinality", Json::opt(s.cardinality)),
                    ("augmentations", Json::opt(s.augmentations)),
                    ("phases", Json::opt(s.phases)),
                    ("selected", Json::opt(s.selected.as_deref())),
                    ("weight", Json::opt(s.weight)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("cardinality", Json::from(self.cardinality())),
            ("seconds", Json::from(self.total_seconds())),
            ("stages", Json::Arr(stages)),
            ("scaling_iterations", Json::opt(self.scaling_iterations)),
            ("scaling_error", Json::opt(self.scaling_error)),
            ("quality", Json::opt(self.quality)),
            ("cancelled", Json::from(self.cancelled)),
            ("deadline_ms", Json::opt(self.deadline_ms)),
            ("weight", Json::opt(self.weight)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let report = SolveReport {
            matching: Matching::new(2, 2),
            stages: vec![StageReport {
                stage: "two".into(),
                seconds: 0.5,
                cardinality: Some(0),
                augmentations: None,
                phases: Some(3),
                selected: Some("pr".into()),
                weight: None,
            }],
            scaling_iterations: Some(5),
            scaling_error: Some(1e-3),
            quality: None,
            cancelled: false,
            deadline_ms: Some(250),
            weight: Some(1.5),
        };
        let s = report.to_json().to_string();
        assert!(s.contains("\"stages\":[{\"stage\":\"two\""), "{s}");
        assert!(s.contains("\"phases\":3"), "{s}");
        assert!(s.contains("\"selected\":\"pr\""), "{s}");
        assert!(s.contains("\"scaling_iterations\":5"), "{s}");
        assert!(s.contains("\"quality\":null"), "{s}");
        assert!(s.contains("\"cancelled\":false"), "{s}");
        assert!(s.contains("\"deadline_ms\":250"), "{s}");
        assert!(s.contains("\"weight\":1.5"), "{s}");
        assert_eq!(report.total_seconds(), 0.5);
    }
}
