//! Composable solve pipelines: `scale → heuristic → augment`.

use std::time::Instant;

use dsmatch_core::{
    cheap_random_edge, cheap_random_vertex, karp_sipser_ws, one_out_matching, one_sided_match_ws,
    two_sided_choices_into, two_sided_match_ws, KarpSipserConfig,
};
use dsmatch_exact::{
    bfs_augment_from, hopcroft_karp_par_cancel, hopcroft_karp_ws, pothen_fan_graft_cancel,
    pothen_fan_par_cancel, pothen_fan_ws, push_relabel_cancel,
};
use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled, Matching, NIL};
use dsmatch_scale::{ruiz_cancel_into, sinkhorn_knopp_cancel_into, ScalingConfig};

use super::registry::AlgorithmKind;
use super::report::{SolveReport, StageReport};
use super::spec::SpecError;
use super::workspace::Workspace;

/// A solver: anything that maps a graph (plus reusable workspace) to an
/// instrumented matching. Implemented by [`Pipeline`] and, for single-stage
/// convenience, by [`AlgorithmKind`].
pub trait Solver {
    /// Solve `g`, reusing the scratch buffers in `ws`.
    fn solve(&self, g: &BipartiteGraph, ws: &mut Workspace) -> SolveReport;

    /// Human/spec-readable description of this solver.
    fn describe(&self) -> String;
}

/// Which doubly-stochastic scaling iteration a `scale` stage runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleMethod {
    /// Parallel Sinkhorn–Knopp, the paper's Algorithm 1 (`sk`).
    SinkhornKnopp,
    /// Ruiz equilibration in the 1-norm (`ruiz`).
    Ruiz,
}

impl ScaleMethod {
    /// Spec name (`sk` / `ruiz`).
    pub fn name(&self) -> &'static str {
        match self {
            ScaleMethod::SinkhornKnopp => "sk",
            ScaleMethod::Ruiz => "ruiz",
        }
    }
}

/// The optional first stage of a [`Pipeline`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleStage {
    /// Iteration family.
    pub method: ScaleMethod,
    /// Stopping rule (the paper's experiments: a fixed iteration count).
    pub config: ScalingConfig,
}

impl ScaleStage {
    /// Spec-grammar label, e.g. `scale:sk:5`.
    pub fn label(&self) -> String {
        format!("scale:{}:{}", self.method.name(), self.config.max_iterations)
    }
}

/// A composed solve: optional scaling, one algorithm, optional exact
/// augmentation finisher seeded with the algorithm's matching — the paper's
/// full experimental protocol (§4) as one first-class object.
///
/// Specs are parsed from the CLI grammar
/// `[scale[:sk|ruiz][:iters],]<algorithm>[,<exact-finisher>]`:
///
/// ```
/// use dsmatch::engine::{Pipeline, Solver, Workspace};
///
/// let g = dsmatch::gen::erdos_renyi_square(500, 4.0, 7);
/// let pipeline: Pipeline = "scale:sk:5,two,pf".parse().unwrap();
/// let mut ws = Workspace::new();
/// let report = pipeline.solve(&g, &mut ws);
/// assert_eq!(report.stages.len(), 3);
/// // The Pothen–Fan finisher makes the composition exact.
/// assert_eq!(report.cardinality(), dsmatch::exact::sprank(&g));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Pipeline {
    /// Optional scaling stage. Without it, sampling heuristics draw
    /// uniformly over adjacency lists (the paper's "0 iterations" rows).
    ///
    /// The stage runs (and is timed) whenever present, but only the
    /// sampling algorithms ([`AlgorithmKind::uses_scaling`]) read its
    /// factors — `scale:sk:5,ks` computes scaling that `ks` never
    /// consults, which is occasionally useful for measuring scaling cost
    /// in isolation but is otherwise pure overhead.
    pub scale: Option<ScaleStage>,
    /// The algorithm stage.
    pub algorithm: AlgorithmKind,
    /// Optional exact finisher warm-started from the algorithm's matching.
    pub augment: Option<AlgorithmKind>,
    /// PRNG seed for the randomized stages.
    pub seed: u64,
}

/// Default number of scaling iterations when a spec says `scale` with no
/// count (§4.1.2 of the paper: five iterations suffice on most instances).
pub const DEFAULT_SCALE_ITERATIONS: usize = 5;

impl Pipeline {
    /// A single-algorithm pipeline with no scale or augment stage.
    pub fn bare(algorithm: AlgorithmKind) -> Self {
        Self { scale: None, algorithm, augment: None, seed: 1 }
    }

    /// The classic driver composition: `iters` Sinkhorn–Knopp iterations
    /// (when the algorithm samples) followed by `algorithm` — exactly what
    /// the old `--algo` CLI interface ran.
    pub fn classic(algorithm: AlgorithmKind, iters: usize, seed: u64) -> Self {
        let scale = algorithm.uses_scaling().then_some(ScaleStage {
            method: ScaleMethod::SinkhornKnopp,
            config: ScalingConfig::iterations(iters),
        });
        Self { scale, algorithm, augment: None, seed }
    }

    /// Replace the seed (specs don't carry one).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Spec-grammar form of this pipeline (parses back to itself).
    pub fn spec(&self) -> String {
        let mut parts = Vec::new();
        if let Some(s) = &self.scale {
            parts.push(s.label());
        }
        parts.push(self.algorithm.name().to_string());
        if let Some(a) = &self.augment {
            parts.push(a.name().to_string());
        }
        parts.join(",")
    }
}

impl std::str::FromStr for Pipeline {
    type Err = SpecError;

    /// Parse `[scale[:sk|ruiz][:iters],]<algorithm>[,<exact-finisher>]`.
    ///
    /// Failures are typed ([`SpecError`]) so callers — the CLI, the
    /// `dsmatch serve` protocol, tests — can branch on the variant while
    /// `Display` carries the human-readable message:
    ///
    /// ```
    /// use dsmatch::engine::{AlgorithmKind, Pipeline, SpecError};
    ///
    /// assert_eq!(
    ///     "two,frobnicate".parse::<Pipeline>().unwrap_err(),
    ///     SpecError::UnknownAlgorithm { name: "frobnicate".into() },
    /// );
    /// assert!(matches!(
    ///     "two,ks".parse::<Pipeline>().unwrap_err(),
    ///     SpecError::NonExactFinisher { finisher: AlgorithmKind::KarpSipser },
    /// ));
    /// assert!(matches!(
    ///     "scale:1e2,two".parse::<Pipeline>().unwrap_err(),
    ///     SpecError::BadIters { .. },
    /// ));
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut stages: Vec<&str> = s.split(',').map(str::trim).collect();
        if stages.iter().any(|t| t.is_empty()) {
            return Err(SpecError::EmptyStage { spec: s.to_string() });
        }
        let scale = if stages[0] == "scale" || stages[0].starts_with("scale:") {
            let mut method = ScaleMethod::SinkhornKnopp;
            let mut iters = DEFAULT_SCALE_ITERATIONS;
            for part in stages[0].split(':').skip(1) {
                match part {
                    "sk" => method = ScaleMethod::SinkhornKnopp,
                    "ruiz" => method = ScaleMethod::Ruiz,
                    // Numeric-looking tokens are iteration counts (and must
                    // parse); anything else is a misspelled method name.
                    other if other.starts_with(|c: char| c.is_ascii_digit()) => {
                        iters = other.parse().map_err(|_| SpecError::BadIters {
                            value: other.to_string(),
                            spec: s.to_string(),
                        })?;
                    }
                    other => {
                        return Err(SpecError::UnknownScaleMethod {
                            option: other.to_string(),
                            spec: s.to_string(),
                        });
                    }
                }
            }
            stages.remove(0);
            Some(ScaleStage { method, config: ScalingConfig::iterations(iters) })
        } else {
            None
        };
        let (algorithm, augment) = match stages.as_slice() {
            [] => return Err(SpecError::MissingAlgorithm { spec: s.to_string() }),
            [algo] => (algo.parse::<AlgorithmKind>()?, None),
            [algo, finisher] => {
                (algo.parse::<AlgorithmKind>()?, Some(finisher.parse::<AlgorithmKind>()?))
            }
            _ => return Err(SpecError::TooManyStages { spec: s.to_string() }),
        };
        if let Some(a) = augment {
            if !a.is_exact() {
                return Err(SpecError::NonExactFinisher { finisher: a });
            }
            if algorithm.is_exact() {
                return Err(SpecError::RedundantFinisher { algorithm, finisher: a });
            }
        }
        Ok(Pipeline { scale, algorithm, augment, seed: 1 })
    }
}

impl std::fmt::Display for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

/// Work counters one algorithm/augment stage reports (beyond its matching):
/// the per-stage half of a [`StageReport`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StageCounters {
    /// Augmenting paths applied (exact engines that count them).
    pub augmentations: Option<usize>,
    /// Search phases executed, including the final certifying phase
    /// (Hopcroft–Karp and the tree-grafting Pothen–Fan variants).
    pub phases: Option<usize>,
    /// The concrete engine an [`AlgorithmKind::Auto`] stage picked.
    pub selected: Option<AlgorithmKind>,
}

/// Run the algorithm stage, sampling from the workspace's current factors.
fn run_algorithm(
    algo: AlgorithmKind,
    g: &BipartiteGraph,
    seed: u64,
    ws: &mut Workspace,
    token: &CancelToken,
) -> Result<(Matching, StageCounters), Cancelled> {
    let heuristic = StageCounters::default();
    Ok(match algo {
        AlgorithmKind::OneSided => {
            (one_sided_match_ws(g, &ws.scaling, seed, &mut ws.heur), heuristic)
        }
        AlgorithmKind::TwoSided | AlgorithmKind::KarpSipserMt => {
            (two_sided_match_ws(g, &ws.scaling, seed, &mut ws.heur), heuristic)
        }
        AlgorithmKind::OneOutUndirected => (one_out_bipartite(g, seed, ws), heuristic),
        AlgorithmKind::KarpSipser => {
            (karp_sipser_ws(g, &KarpSipserConfig { seed }, &mut ws.heur.ks).matching, heuristic)
        }
        AlgorithmKind::CheapEdge => (cheap_random_edge(g, seed), heuristic),
        AlgorithmKind::CheapVertex => (cheap_random_vertex(g, seed), heuristic),
        AlgorithmKind::HopcroftKarp
        | AlgorithmKind::PothenFan
        | AlgorithmKind::PushRelabel
        | AlgorithmKind::BfsAugment
        | AlgorithmKind::HopcroftKarpPar
        | AlgorithmKind::PothenFanPar
        | AlgorithmKind::PothenFanGraft
        | AlgorithmKind::Auto => run_augment(algo, g, None, ws, token)?,
    })
}

/// Feed `initial` into the exact finisher `algo` (`None`: solve cold).
/// Shared by the pipeline's augment stage, the exact algorithm stages
/// above, and the `serve` daemon's warm delta re-solves.
///
/// The token reaches the phase/epoch loops of the cancellable finishers
/// (`hk-par`, `pf-par`, `pf-graft`, `pr`); the short sequential engines
/// (`hk`, `pf`, `bfs`) run to completion regardless.
pub(crate) fn run_augment(
    algo: AlgorithmKind,
    g: &BipartiteGraph,
    initial: Option<Matching>,
    ws: &mut Workspace,
    token: &CancelToken,
) -> Result<(Matching, StageCounters), Cancelled> {
    Ok(match algo {
        AlgorithmKind::HopcroftKarp => {
            let (m, stats) = hopcroft_karp_ws(g, initial.as_ref(), &mut ws.augment);
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    phases: Some(stats.phases),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::PothenFan => {
            let (m, stats) = pothen_fan_ws(g, initial.as_ref(), &mut ws.augment);
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::PushRelabel => {
            let (m, _) = push_relabel_cancel(
                g,
                initial.unwrap_or_else(|| Matching::new(g.nrows(), g.ncols())),
                token,
            )?;
            (m, StageCounters::default())
        }
        AlgorithmKind::BfsAugment => {
            let (m, stats) =
                bfs_augment_from(g, initial.unwrap_or_else(|| Matching::new(g.nrows(), g.ncols())));
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::HopcroftKarpPar => {
            let (m, stats) = hopcroft_karp_par_cancel(g, initial.as_ref(), &mut ws.augment, token)?;
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    phases: Some(stats.phases),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::PothenFanPar => {
            let (m, stats) = pothen_fan_par_cancel(g, initial.as_ref(), &mut ws.augment, token)?;
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    phases: Some(stats.phases),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::PothenFanGraft => {
            let (m, stats) = pothen_fan_graft_cancel(g, initial.as_ref(), &mut ws.augment, token)?;
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    phases: Some(stats.phases),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::Auto => {
            // Pick from instance statistics, run the pick, and surface the
            // decision so reports (and serve delta replies) can show it.
            let pick = super::registry::select_finisher(g);
            debug_assert!(pick.is_exact() && pick != AlgorithmKind::Auto);
            let (m, mut counters) = run_augment(pick, g, initial, ws, token)?;
            counters.selected = Some(pick);
            (m, counters)
        }
        other => unreachable!("{other} is not exact; rejected at parse/validation time"),
    })
}

/// The §5 one-out undirected variant on the bipartite graph viewed as one
/// vertex class: every vertex (row or column) samples one neighbour from
/// the current factors, and the functional graph is matched exactly. The
/// concatenated factor vector `(dr, dc)` *is* the symmetric scaling of the
/// bipartite adjacency, so the same sampling weights apply.
fn one_out_bipartite(g: &BipartiteGraph, seed: u64, ws: &mut Workspace) -> Matching {
    let n_r = g.nrows();
    let Workspace { scaling, heur, .. } = ws;
    two_sided_choices_into(g, scaling, seed, &mut heur.rchoice, &mut heur.cchoice);
    // Unified one-class choice array (column ids offset by `n_r`), reusing
    // the Algorithm 4 concatenation buffer.
    let choice = &mut heur.ksmt.choice;
    choice.clear();
    choice.extend(
        heur.rchoice.iter().map(|&j| if j == NIL { NIL } else { (j as usize + n_r) as u32 }),
    );
    choice.extend_from_slice(&heur.cchoice);
    let um = one_out_matching(choice);
    let mut rmate = vec![NIL; n_r];
    let mut cmate = vec![NIL; g.ncols()];
    for i in 0..n_r {
        let v = um.mate(i);
        if v != NIL {
            debug_assert!(v as usize >= n_r, "bipartite edges only cross sides");
            rmate[i] = v - n_r as u32;
            cmate[(v as usize) - n_r] = i as u32;
        }
    }
    Matching::from_mates(rmate, cmate)
}

impl Solver for Pipeline {
    /// Solve `g`. When `ws` owns a thread pool ([`Workspace::with_threads`])
    /// every stage executes with that pool installed, so the parallel
    /// kernels run on its workers; otherwise the ambient pool is used.
    fn solve(&self, g: &BipartiteGraph, ws: &mut Workspace) -> SolveReport {
        self.solve_cancel(g, ws, &CancelToken::unbounded()).expect("unbounded token never cancels")
    }

    fn describe(&self) -> String {
        self.spec()
    }
}

impl Pipeline {
    /// [`Solver::solve`] with cooperative cancellation: the token reaches
    /// the scaling iteration loop and the phase/epoch loops of the
    /// cancellable exact finishers, so a deadline or explicit cancel is
    /// observed within one phase. On [`Cancelled`] the workspace stays
    /// reusable — a subsequent solve on it produces byte-identical output
    /// to a fresh workspace.
    pub fn solve_cancel(
        &self,
        g: &BipartiteGraph,
        ws: &mut Workspace,
        token: &CancelToken,
    ) -> Result<SolveReport, Cancelled> {
        match ws.pool().cloned() {
            Some(pool) => pool.install(|| self.solve_stages(g, ws, token)),
            None => self.solve_stages(g, ws, token),
        }
    }

    /// The stage driver behind [`Solver::solve`], running in whatever pool
    /// context the caller established.
    fn solve_stages(
        &self,
        g: &BipartiteGraph,
        ws: &mut Workspace,
        token: &CancelToken,
    ) -> Result<SolveReport, Cancelled> {
        let mut stages = Vec::with_capacity(3);
        let mut scaling_iterations = None;
        let mut scaling_error = None;

        if let Some(stage) = &self.scale {
            let t0 = Instant::now();
            match stage.method {
                ScaleMethod::SinkhornKnopp => {
                    sinkhorn_knopp_cancel_into(g, &stage.config, &mut ws.scaling, token)?
                }
                ScaleMethod::Ruiz => ruiz_cancel_into(g, &stage.config, &mut ws.scaling, token)?,
            }
            stages.push(StageReport {
                stage: stage.label(),
                seconds: t0.elapsed().as_secs_f64(),
                cardinality: None,
                augmentations: None,
                phases: None,
                selected: None,
            });
            scaling_iterations = Some(ws.scaling.iterations);
            scaling_error = Some(ws.scaling.error);
        } else if self.algorithm.uses_scaling() {
            // Uniform sampling: reset the factor buffers to the identity
            // (reusing their allocation) so the stage below can read them.
            ws.scaling.reset_identity(g);
        }

        let t0 = Instant::now();
        let (matching, counters) = run_algorithm(self.algorithm, g, self.seed, ws, token)?;
        stages.push(StageReport {
            stage: self.algorithm.name().to_string(),
            seconds: t0.elapsed().as_secs_f64(),
            cardinality: Some(matching.cardinality()),
            augmentations: counters.augmentations,
            phases: counters.phases,
            selected: counters.selected.map(|k| k.name().to_string()),
        });

        let matching = if let Some(finisher) = self.augment {
            let t0 = Instant::now();
            let (m, counters) = run_augment(finisher, g, Some(matching), ws, token)?;
            stages.push(StageReport {
                stage: format!("augment:{finisher}"),
                seconds: t0.elapsed().as_secs_f64(),
                cardinality: Some(m.cardinality()),
                augmentations: counters.augmentations,
                phases: counters.phases,
                selected: counters.selected.map(|k| k.name().to_string()),
            });
            m
        } else {
            matching
        };

        Ok(SolveReport {
            matching,
            stages,
            scaling_iterations,
            scaling_error,
            quality: None,
            cancelled: false,
            deadline_ms: None,
        })
    }
}

impl Solver for AlgorithmKind {
    /// Single-stage solve with the default seed — equivalent to
    /// [`Pipeline::bare`]. Use a [`Pipeline`] to control seed and stages.
    fn solve(&self, g: &BipartiteGraph, ws: &mut Workspace) -> SolveReport {
        Pipeline::bare(*self).solve(g, ws)
    }

    fn describe(&self) -> String {
        self.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip() {
        for spec in [
            "two",
            "hk",
            "scale:sk:5,two",
            "scale:ruiz:10,one",
            "scale:sk:5,two,pf",
            "scale:sk:0,ksmt,hk",
            "cheap,bfs",
            "scale:sk:5,two,pf-par",
            "scale:sk:5,two,hk-par",
            "scale:sk:5,two,pf-graft",
            "scale:sk:5,two,auto",
            "pf-par",
            "auto",
        ] {
            let p: Pipeline = spec.parse().unwrap();
            assert_eq!(p.spec(), spec, "roundtrip of {spec}");
            let again: Pipeline = p.spec().parse().unwrap();
            assert_eq!(again, p);
        }
    }

    #[test]
    fn spec_sugar_and_errors() {
        let p: Pipeline = "scale,two".parse().unwrap();
        assert_eq!(p.spec(), format!("scale:sk:{DEFAULT_SCALE_ITERATIONS},two"));
        let p: Pipeline = "scale:8,two".parse().unwrap();
        assert_eq!(p.scale.unwrap().config.max_iterations, 8);
        assert!("".parse::<Pipeline>().is_err());
        assert!("scale".parse::<Pipeline>().is_err(), "scale alone names no algorithm");
        assert!("two,ks".parse::<Pipeline>().is_err(), "finisher must be exact");
        assert!("hk,pf".parse::<Pipeline>().is_err(), "exact + finisher is redundant");
        assert!("scale:bogus,two".parse::<Pipeline>().is_err());
        assert!("scale,two,pf,hk".parse::<Pipeline>().is_err());
        assert!("two,,pf".parse::<Pipeline>().is_err());
    }

    #[test]
    fn classic_matches_spec_semantics() {
        let p = Pipeline::classic(AlgorithmKind::TwoSided, 5, 42);
        assert_eq!(p.spec(), "scale:sk:5,two");
        assert_eq!(p.seed, 42);
        // Non-sampling algorithms get no scale stage.
        let p = Pipeline::classic(AlgorithmKind::KarpSipser, 5, 1);
        assert_eq!(p.spec(), "ks");
    }
}
