//! Composable solve pipelines: `scale → workload → augment`, with
//! decomposition-driven solves (`dm,<pipeline>`) as a recursive workload.

use std::time::Instant;

use dsmatch_core::{
    cheap_random_edge, cheap_random_vertex, karp_sipser_cancel_ws, one_out_matching,
    one_sided_match_ws, two_sided_choices_into, two_sided_match_cancel_ws, KarpSipserConfig,
};
use dsmatch_dm::{dulmage_mendelsohn, fine_decomposition};
use dsmatch_exact::{
    bfs_augment_from, hopcroft_karp_cancel_ws, hopcroft_karp_par_cancel, pothen_fan_cancel_ws,
    pothen_fan_graft_cancel, pothen_fan_par_cancel, push_relabel_cancel,
};
use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled, Matching, TripletMatrix, NIL};
use dsmatch_scale::{ruiz_cancel_into, sinkhorn_knopp_cancel_into, ScalingConfig};
use dsmatch_weighted::{
    greedy_weighted, matching_weight, path_growing, suitor, suitor_parallel, WeightedGraph,
};
use rayon::prelude::*;

use super::registry::{AlgorithmKind, WeightedKind};
use super::report::{SolveReport, StageReport};
use super::spec::{SpecError, StageKind};
use super::workspace::Workspace;

/// A solver: anything that maps a graph (plus reusable workspace) to an
/// instrumented matching. Implemented by [`Pipeline`] and, for single-stage
/// convenience, by [`AlgorithmKind`].
pub trait Solver {
    /// Solve `g`, reusing the scratch buffers in `ws`.
    fn solve(&self, g: &BipartiteGraph, ws: &mut Workspace) -> SolveReport;

    /// Human/spec-readable description of this solver.
    fn describe(&self) -> String;
}

/// Which doubly-stochastic scaling iteration a `scale` stage runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleMethod {
    /// Parallel Sinkhorn–Knopp, the paper's Algorithm 1 (`sk`).
    SinkhornKnopp,
    /// Ruiz equilibration in the 1-norm (`ruiz`).
    Ruiz,
}

impl ScaleMethod {
    /// Spec name (`sk` / `ruiz`).
    pub fn name(&self) -> &'static str {
        match self {
            ScaleMethod::SinkhornKnopp => "sk",
            ScaleMethod::Ruiz => "ruiz",
        }
    }
}

/// The optional first stage of a [`Pipeline`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleStage {
    /// Iteration family.
    pub method: ScaleMethod,
    /// Stopping rule (the paper's experiments: a fixed iteration count).
    pub config: ScalingConfig,
}

impl ScaleStage {
    /// Spec-grammar label, e.g. `scale:sk:5`.
    pub fn label(&self) -> String {
        format!("scale:{}:{}", self.method.name(), self.config.max_iterations)
    }
}

/// The workload stage of a [`Pipeline`]: what actually computes a matching.
///
/// v1 specs only had cardinality algorithms in this slot; grammar v2 makes
/// the stage **typed**, adding weighted heuristics (the scaled entries
/// become edge weights) and decomposition-driven solves (`dm,<pipeline>`:
/// coarse + fine Dulmage–Mendelsohn, fine blocks solved independently by
/// the inner pipeline and stitched back through the block permutation).
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// A cardinality algorithm from the [`AlgorithmKind`] registry — the
    /// entire v1 grammar.
    Cardinality(AlgorithmKind),
    /// A weighted heuristic from the [`WeightedKind`] registry, matching
    /// on the scaling entries `s_ij = d_r[i]·d_c[j]` as edge weights (the
    /// paper's probability bridge: the doubly stochastic limit assigns
    /// each entry its probability of being matched, so the weighted
    /// heuristics chase exactly the edges scaling considers likely).
    Weighted(WeightedKind),
    /// A `dm,<pipeline>` decomposition solve: the inner pipeline runs on
    /// every non-trivial fine block as an independent, stealable job.
    Decompose(Box<Pipeline>),
}

impl Workload {
    /// Whether this workload reads the workspace's scaling factors when no
    /// explicit `scale` stage precedes it (weighted workloads always do —
    /// without scaling they degrade to uniform weights; decomposition
    /// defers the question to its inner pipeline per block).
    pub fn uses_scaling(&self) -> bool {
        match self {
            Workload::Cardinality(a) => a.uses_scaling(),
            Workload::Weighted(_) => true,
            Workload::Decompose(_) => false,
        }
    }
}

/// A composed solve: optional scaling, one workload, optional exact
/// augmentation finisher seeded with the workload's matching — the paper's
/// full experimental protocol (§4) as one first-class object.
///
/// Specs are parsed from the CLI grammar v2 (see
/// [`StageKind`](crate::engine::StageKind) for the typed-stage rules):
///
/// ```text
/// <pipeline> ::= dm,<pipeline>
///              | [scale[:sk|ruiz][:iters],]<workload>[,<exact-finisher>]
/// <workload> ::= <algorithm> | greedy-w | path-grow | suitor | suitor-par
/// ```
///
/// ```
/// use dsmatch::engine::{Pipeline, Solver, Workspace};
///
/// let g = dsmatch::gen::erdos_renyi_square(500, 4.0, 7);
/// let pipeline: Pipeline = "scale:sk:5,two,pf".parse().unwrap();
/// let mut ws = Workspace::new();
/// let report = pipeline.solve(&g, &mut ws);
/// assert_eq!(report.stages.len(), 3);
/// // The Pothen–Fan finisher makes the composition exact.
/// assert_eq!(report.cardinality(), dsmatch::exact::sprank(&g));
///
/// // v2: weighted workloads report a "weight" quality axis …
/// let weighted: Pipeline = "scale:sk:5,suitor".parse().unwrap();
/// assert!(weighted.solve(&g, &mut ws).weight.is_some());
/// // … and dm,<pipeline> solves fine blocks independently.
/// let dm: Pipeline = "dm,two,pf".parse().unwrap();
/// assert_eq!(dm.solve(&g, &mut ws).cardinality(), dsmatch::exact::sprank(&g));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Pipeline {
    /// Optional scaling stage. Without it, sampling heuristics draw
    /// uniformly over adjacency lists (the paper's "0 iterations" rows)
    /// and weighted workloads see uniform weights.
    ///
    /// The stage runs (and is timed) whenever present, but only the
    /// sampling workloads ([`Workload::uses_scaling`]) read its
    /// factors — `scale:sk:5,ks` computes scaling that `ks` never
    /// consults, which is occasionally useful for measuring scaling cost
    /// in isolation but is otherwise pure overhead.
    pub scale: Option<ScaleStage>,
    /// The workload stage.
    pub workload: Workload,
    /// Optional exact finisher warm-started from the workload's matching.
    pub augment: Option<AlgorithmKind>,
    /// PRNG seed for the randomized stages.
    pub seed: u64,
}

/// Default number of scaling iterations when a spec says `scale` with no
/// count (§4.1.2 of the paper: five iterations suffice on most instances).
pub const DEFAULT_SCALE_ITERATIONS: usize = 5;

impl Pipeline {
    /// A single-algorithm pipeline with no scale or augment stage.
    pub fn bare(algorithm: AlgorithmKind) -> Self {
        Self { scale: None, workload: Workload::Cardinality(algorithm), augment: None, seed: 1 }
    }

    /// The classic driver composition: `iters` Sinkhorn–Knopp iterations
    /// (when the algorithm samples) followed by `algorithm` — exactly what
    /// the old `--algo` CLI interface ran.
    pub fn classic(algorithm: AlgorithmKind, iters: usize, seed: u64) -> Self {
        let scale = algorithm.uses_scaling().then_some(ScaleStage {
            method: ScaleMethod::SinkhornKnopp,
            config: ScalingConfig::iterations(iters),
        });
        Self { scale, workload: Workload::Cardinality(algorithm), augment: None, seed }
    }

    /// Replace the seed (specs don't carry one).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Spec-grammar form of this pipeline (parses back to itself).
    pub fn spec(&self) -> String {
        if let Workload::Decompose(inner) = &self.workload {
            return format!("dm,{}", inner.spec());
        }
        let mut parts = Vec::new();
        if let Some(s) = &self.scale {
            parts.push(s.label());
        }
        parts.push(match &self.workload {
            Workload::Cardinality(a) => a.name().to_string(),
            Workload::Weighted(w) => w.name().to_string(),
            Workload::Decompose(_) => unreachable!("handled above"),
        });
        if let Some(a) = &self.augment {
            parts.push(a.name().to_string());
        }
        parts.join(",")
    }
}

/// Parse a flat (non-`dm`) classified stage list:
/// `[scale,]<workload>[,<finisher>]`. `spec` is the full original string
/// for error messages.
fn parse_flat(pairs: &[(&str, StageKind)], spec: &str) -> Result<Pipeline, SpecError> {
    if pairs.iter().any(|(_, k)| matches!(k, StageKind::Decompose)) {
        return Err(SpecError::MisplacedDecomposition { spec: spec.to_string() });
    }
    let (scale, rest) = match pairs {
        [(_, StageKind::Scale(st)), rest @ ..] => (Some(*st), rest),
        rest => (None, rest),
    };
    // A scale token past the first stage was never a workload name.
    let as_workload = |&(token, kind): &(&str, StageKind)| match kind {
        StageKind::Algorithm(a) => Ok(Workload::Cardinality(a)),
        StageKind::Weighted(w) => Ok(Workload::Weighted(w)),
        _ => Err(SpecError::UnknownAlgorithm { name: token.to_string() }),
    };
    let (workload, augment) = match rest {
        [] => return Err(SpecError::MissingAlgorithm { spec: spec.to_string() }),
        [w] => (as_workload(w)?, None),
        [w, f] => {
            let workload = as_workload(w)?;
            let finisher = match *f {
                (_, StageKind::Algorithm(a)) => a,
                (_, StageKind::Weighted(k)) => {
                    return Err(SpecError::WeightedAsFinisher { finisher: k });
                }
                (token, _) => return Err(SpecError::UnknownAlgorithm { name: token.to_string() }),
            };
            if let Workload::Weighted(k) = workload {
                return Err(SpecError::WeightedWithFinisher { algorithm: k, finisher });
            }
            (workload, Some(finisher))
        }
        _ => return Err(SpecError::TooManyStages { spec: spec.to_string() }),
    };
    if let (Workload::Cardinality(algorithm), Some(finisher)) = (&workload, augment) {
        if !finisher.is_exact() {
            return Err(SpecError::NonExactFinisher { finisher });
        }
        if algorithm.is_exact() {
            return Err(SpecError::RedundantFinisher { algorithm: *algorithm, finisher });
        }
    }
    Ok(Pipeline { scale, workload, augment, seed: 1 })
}

impl std::str::FromStr for Pipeline {
    type Err = SpecError;

    /// Parse the v2 grammar:
    /// `dm,<pipeline>` or `[scale[:sk|ruiz][:iters],]<workload>[,<exact-finisher>]`.
    ///
    /// Every token is classified through [`StageKind`] first, then
    /// validated by type rather than position — which is what keeps every
    /// v1 string parsing byte-identically while `suitor` and `dm,`
    /// stages slot in. Failures are typed ([`SpecError`]) so callers — the
    /// CLI, the `dsmatch serve` protocol, tests — can branch on the
    /// variant while `Display` carries the human-readable message:
    ///
    /// ```
    /// use dsmatch::engine::{AlgorithmKind, Pipeline, SpecError};
    ///
    /// assert_eq!(
    ///     "two,frobnicate".parse::<Pipeline>().unwrap_err(),
    ///     SpecError::UnknownAlgorithm { name: "frobnicate".into() },
    /// );
    /// assert!(matches!(
    ///     "two,ks".parse::<Pipeline>().unwrap_err(),
    ///     SpecError::NonExactFinisher { finisher: AlgorithmKind::KarpSipser },
    /// ));
    /// assert!(matches!(
    ///     "scale:1e2,two".parse::<Pipeline>().unwrap_err(),
    ///     SpecError::BadIters { .. },
    /// ));
    /// assert!(matches!(
    ///     "dm".parse::<Pipeline>().unwrap_err(),
    ///     SpecError::EmptyDecomposition { .. },
    /// ));
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let tokens: Vec<&str> = s.split(',').map(str::trim).collect();
        if tokens.iter().any(|t| t.is_empty()) {
            return Err(SpecError::EmptyStage { spec: s.to_string() });
        }
        let pairs = tokens
            .iter()
            .map(|&t| StageKind::classify(t, s).map(|k| (t, k)))
            .collect::<Result<Vec<_>, _>>()?;
        if let Some((_, StageKind::Decompose)) = pairs.first() {
            let inner = &pairs[1..];
            if inner.is_empty() {
                return Err(SpecError::EmptyDecomposition { spec: s.to_string() });
            }
            if matches!(inner.first(), Some((_, StageKind::Decompose))) {
                return Err(SpecError::NestedDecomposition { spec: s.to_string() });
            }
            let inner = parse_flat(inner, s)?;
            return Ok(Pipeline {
                scale: None,
                workload: Workload::Decompose(Box::new(inner)),
                augment: None,
                seed: 1,
            });
        }
        parse_flat(&pairs, s)
    }
}

impl std::fmt::Display for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

/// Work counters one algorithm/augment stage reports (beyond its matching):
/// the per-stage half of a [`StageReport`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StageCounters {
    /// Augmenting paths applied (exact engines that count them).
    pub augmentations: Option<usize>,
    /// Search phases executed, including the final certifying phase
    /// (Hopcroft–Karp and the tree-grafting Pothen–Fan variants).
    pub phases: Option<usize>,
    /// The concrete engine an [`AlgorithmKind::Auto`] stage picked.
    pub selected: Option<AlgorithmKind>,
}

/// Run the algorithm stage, sampling from the workspace's current factors.
fn run_algorithm(
    algo: AlgorithmKind,
    g: &BipartiteGraph,
    seed: u64,
    ws: &mut Workspace,
    token: &CancelToken,
) -> Result<(Matching, StageCounters), Cancelled> {
    let heuristic = StageCounters::default();
    Ok(match algo {
        AlgorithmKind::OneSided => {
            (one_sided_match_ws(g, &ws.scaling, seed, &mut ws.heur), heuristic)
        }
        AlgorithmKind::TwoSided | AlgorithmKind::KarpSipserMt => {
            (two_sided_match_cancel_ws(g, &ws.scaling, seed, &mut ws.heur, token)?, heuristic)
        }
        AlgorithmKind::OneOutUndirected => (one_out_bipartite(g, seed, ws), heuristic),
        AlgorithmKind::KarpSipser => (
            karp_sipser_cancel_ws(g, &KarpSipserConfig { seed }, &mut ws.heur.ks, token)?.matching,
            heuristic,
        ),
        AlgorithmKind::CheapEdge => (cheap_random_edge(g, seed), heuristic),
        AlgorithmKind::CheapVertex => (cheap_random_vertex(g, seed), heuristic),
        AlgorithmKind::HopcroftKarp
        | AlgorithmKind::PothenFan
        | AlgorithmKind::PushRelabel
        | AlgorithmKind::BfsAugment
        | AlgorithmKind::HopcroftKarpPar
        | AlgorithmKind::PothenFanPar
        | AlgorithmKind::PothenFanGraft
        | AlgorithmKind::Auto => run_augment(algo, g, None, ws, token)?,
    })
}

/// Feed `initial` into the exact finisher `algo` (`None`: solve cold).
/// Shared by the pipeline's augment stage, the exact algorithm stages
/// above, and the `serve` daemon's warm delta re-solves.
///
/// The token reaches the phase/epoch loops of the cancellable finishers
/// (`hk-par`, `pf-par`, `pf-graft`, `pr`) and the periodic polls inside
/// the sequential engines (`hk`: once per phase; `pf`: every 256 DFS
/// roots); only the one-shot `bfs` sweep runs to completion regardless.
pub(crate) fn run_augment(
    algo: AlgorithmKind,
    g: &BipartiteGraph,
    initial: Option<Matching>,
    ws: &mut Workspace,
    token: &CancelToken,
) -> Result<(Matching, StageCounters), Cancelled> {
    Ok(match algo {
        AlgorithmKind::HopcroftKarp => {
            let (m, stats) = hopcroft_karp_cancel_ws(g, initial.as_ref(), &mut ws.augment, token)?;
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    phases: Some(stats.phases),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::PothenFan => {
            let (m, stats) = pothen_fan_cancel_ws(g, initial.as_ref(), &mut ws.augment, token)?;
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::PushRelabel => {
            let (m, _) = push_relabel_cancel(
                g,
                initial.unwrap_or_else(|| Matching::new(g.nrows(), g.ncols())),
                token,
            )?;
            (m, StageCounters::default())
        }
        AlgorithmKind::BfsAugment => {
            let (m, stats) =
                bfs_augment_from(g, initial.unwrap_or_else(|| Matching::new(g.nrows(), g.ncols())));
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::HopcroftKarpPar => {
            let (m, stats) = hopcroft_karp_par_cancel(g, initial.as_ref(), &mut ws.augment, token)?;
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    phases: Some(stats.phases),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::PothenFanPar => {
            let (m, stats) = pothen_fan_par_cancel(g, initial.as_ref(), &mut ws.augment, token)?;
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    phases: Some(stats.phases),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::PothenFanGraft => {
            let (m, stats) = pothen_fan_graft_cancel(g, initial.as_ref(), &mut ws.augment, token)?;
            (
                m,
                StageCounters {
                    augmentations: Some(stats.augmentations),
                    phases: Some(stats.phases),
                    ..StageCounters::default()
                },
            )
        }
        AlgorithmKind::Auto => {
            // Pick from instance statistics, run the pick, and surface the
            // decision so reports (and serve delta replies) can show it.
            let pick = super::registry::select_finisher(g);
            debug_assert!(pick.is_exact() && pick != AlgorithmKind::Auto);
            let (m, mut counters) = run_augment(pick, g, initial, ws, token)?;
            counters.selected = Some(pick);
            (m, counters)
        }
        other => unreachable!("{other} is not exact; rejected at parse/validation time"),
    })
}

/// The §5 one-out undirected variant on the bipartite graph viewed as one
/// vertex class: every vertex (row or column) samples one neighbour from
/// the current factors, and the functional graph is matched exactly. The
/// concatenated factor vector `(dr, dc)` *is* the symmetric scaling of the
/// bipartite adjacency, so the same sampling weights apply.
fn one_out_bipartite(g: &BipartiteGraph, seed: u64, ws: &mut Workspace) -> Matching {
    let n_r = g.nrows();
    let Workspace { scaling, heur, .. } = ws;
    two_sided_choices_into(g, scaling, seed, &mut heur.rchoice, &mut heur.cchoice);
    // Unified one-class choice array (column ids offset by `n_r`), reusing
    // the Algorithm 4 concatenation buffer.
    let choice = &mut heur.ksmt.choice;
    choice.clear();
    choice.extend(
        heur.rchoice.iter().map(|&j| if j == NIL { NIL } else { (j as usize + n_r) as u32 }),
    );
    choice.extend_from_slice(&heur.cchoice);
    let um = one_out_matching(choice);
    let mut rmate = vec![NIL; n_r];
    let mut cmate = vec![NIL; g.ncols()];
    for i in 0..n_r {
        let v = um.mate(i);
        if v != NIL {
            debug_assert!(v as usize >= n_r, "bipartite edges only cross sides");
            rmate[i] = v - n_r as u32;
            cmate[(v as usize) - n_r] = i as u32;
        }
    }
    Matching::from_mates(rmate, cmate)
}

impl Solver for Pipeline {
    /// Solve `g`. When `ws` owns a thread pool ([`Workspace::with_threads`])
    /// every stage executes with that pool installed, so the parallel
    /// kernels run on its workers; otherwise the ambient pool is used.
    fn solve(&self, g: &BipartiteGraph, ws: &mut Workspace) -> SolveReport {
        self.solve_cancel(g, ws, &CancelToken::unbounded()).expect("unbounded token never cancels")
    }

    fn describe(&self) -> String {
        self.spec()
    }
}

impl Pipeline {
    /// [`Solver::solve`] with cooperative cancellation: the token reaches
    /// the scaling iteration loop and the phase/epoch loops of the
    /// cancellable exact finishers, so a deadline or explicit cancel is
    /// observed within one phase. On [`Cancelled`] the workspace stays
    /// reusable — a subsequent solve on it produces byte-identical output
    /// to a fresh workspace.
    pub fn solve_cancel(
        &self,
        g: &BipartiteGraph,
        ws: &mut Workspace,
        token: &CancelToken,
    ) -> Result<SolveReport, Cancelled> {
        match ws.pool().cloned() {
            Some(pool) => pool.install(|| self.solve_stages(g, ws, token)),
            None => self.solve_stages(g, ws, token),
        }
    }

    /// The stage driver behind [`Solver::solve`], running in whatever pool
    /// context the caller established.
    fn solve_stages(
        &self,
        g: &BipartiteGraph,
        ws: &mut Workspace,
        token: &CancelToken,
    ) -> Result<SolveReport, Cancelled> {
        if let Workload::Decompose(inner) = &self.workload {
            return self.solve_decompose(g, inner, ws, token);
        }

        let mut stages = Vec::with_capacity(3);
        let mut scaling_iterations = None;
        let mut scaling_error = None;

        if let Some(stage) = &self.scale {
            let t0 = Instant::now();
            match stage.method {
                ScaleMethod::SinkhornKnopp => {
                    sinkhorn_knopp_cancel_into(g, &stage.config, &mut ws.scaling, token)?
                }
                ScaleMethod::Ruiz => ruiz_cancel_into(g, &stage.config, &mut ws.scaling, token)?,
            }
            stages.push(StageReport {
                stage: stage.label(),
                seconds: t0.elapsed().as_secs_f64(),
                cardinality: None,
                augmentations: None,
                phases: None,
                selected: None,
                weight: None,
            });
            scaling_iterations = Some(ws.scaling.iterations);
            scaling_error = Some(ws.scaling.error);
        } else if self.workload.uses_scaling() {
            // Uniform sampling: reset the factor buffers to the identity
            // (reusing their allocation) so the stage below can read them.
            ws.scaling.reset_identity(g);
        }

        let t0 = Instant::now();
        let (matching, counters, weight) = match &self.workload {
            Workload::Cardinality(algo) => {
                let (m, counters) = run_algorithm(*algo, g, self.seed, ws, token)?;
                (m, counters, None)
            }
            Workload::Weighted(kind) => {
                let (m, weight) = run_weighted(*kind, g, ws, token)?;
                (m, StageCounters::default(), Some(weight))
            }
            Workload::Decompose(_) => unreachable!("handled above"),
        };
        stages.push(StageReport {
            stage: match &self.workload {
                Workload::Cardinality(a) => a.name().to_string(),
                Workload::Weighted(w) => w.name().to_string(),
                Workload::Decompose(_) => unreachable!("handled above"),
            },
            seconds: t0.elapsed().as_secs_f64(),
            cardinality: Some(matching.cardinality()),
            augmentations: counters.augmentations,
            phases: counters.phases,
            selected: counters.selected.map(|k| k.name().to_string()),
            weight,
        });

        let matching = if let Some(finisher) = self.augment {
            let t0 = Instant::now();
            let (m, counters) = run_augment(finisher, g, Some(matching), ws, token)?;
            stages.push(StageReport {
                stage: format!("augment:{finisher}"),
                seconds: t0.elapsed().as_secs_f64(),
                cardinality: Some(m.cardinality()),
                augmentations: counters.augmentations,
                phases: counters.phases,
                selected: counters.selected.map(|k| k.name().to_string()),
                weight: None,
            });
            m
        } else {
            matching
        };

        Ok(SolveReport {
            matching,
            stages,
            scaling_iterations,
            scaling_error,
            quality: None,
            cancelled: false,
            deadline_ms: None,
            weight,
        })
    }

    /// Solve a `dm,<inner>` workload: coarse + fine Dulmage–Mendelsohn
    /// decomposition, every non-trivial fine block extracted as its own
    /// bipartite instance and solved independently by `inner` as a
    /// stealable job on the workspace's block pool, and the block mates
    /// stitched back through the block permutation.
    ///
    /// Determinism contract: block boundaries, per-block seeds, and stitch
    /// order depend only on the instance — never on pool size — and every
    /// block solves on a pinned 1-thread slot workspace, so the stitched
    /// mates are byte-identical at every thread count.
    fn solve_decompose(
        &self,
        g: &BipartiteGraph,
        inner: &Pipeline,
        ws: &mut Workspace,
        token: &CancelToken,
    ) -> Result<SolveReport, Cancelled> {
        token.check()?;
        let t0 = Instant::now();
        let dm = dulmage_mendelsohn(g);
        let fine = fine_decomposition(g, &dm);
        let mut stages = vec![StageReport {
            stage: "dm".to_string(),
            seconds: t0.elapsed().as_secs_f64(),
            cardinality: Some(dm.sprank()),
            augmentations: None,
            phases: Some(fine.block_count),
            selected: None,
            weight: None,
        }];

        // Mates start from the coarse matching: horizontal/vertical
        // vertices and singleton blocks keep their DM mates (already
        // maximum there); multi-pair blocks are re-solved below.
        let mut rmate = dm.matching.rmates().to_vec();
        let mut cmate = dm.matching.cmates().to_vec();

        // Group S rows/columns by fine block in ascending original order —
        // the deterministic local numbering the stitch inverts.
        let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); fine.block_count];
        let mut cols_of: Vec<Vec<u32>> = vec![Vec::new(); fine.block_count];
        for i in 0..g.nrows() {
            if fine.block_of_row[i] != NIL {
                rows_of[fine.block_of_row[i] as usize].push(i as u32);
            }
        }
        for j in 0..g.ncols() {
            if fine.block_of_col[j] != NIL {
                cols_of[fine.block_of_col[j] as usize].push(j as u32);
            }
        }
        let mut col_local = vec![NIL; g.ncols()];
        for cols in &cols_of {
            for (lj, &j) in cols.iter().enumerate() {
                col_local[j as usize] = lj as u32;
            }
        }

        // Extract each block of ≥ 2 pairs as its own instance. Only
        // intra-block entries carry over: cross-block entries are the `∗`
        // entries of the block triangular form and can never be matching
        // edges of the block.
        let t1 = Instant::now();
        let mut jobs: Vec<(usize, BipartiteGraph)> = Vec::new();
        for b in 0..fine.block_count {
            if fine.block_sizes[b] < 2 {
                continue;
            }
            token.check()?;
            let (rows, cols) = (&rows_of[b], &cols_of[b]);
            let mut t = TripletMatrix::new(rows.len(), cols.len());
            for (li, &i) in rows.iter().enumerate() {
                for &j in g.row_adj(i as usize) {
                    if fine.block_of_col[j as usize] == b as u32 {
                        t.push(li, col_local[j as usize] as usize);
                    }
                }
            }
            jobs.push((b, BipartiteGraph::from_csr(t.into_csr())));
        }

        // Fan the blocks out: stealable jobs, one pinned 1-thread slot
        // workspace each, order-preserving collect.
        let seed = self.seed;
        let pool = ws.dm_pool();
        let solved: Vec<Result<SolveReport, Cancelled>> = pool.run(|| {
            jobs.par_iter()
                .with_max_len(1)
                .map(|(b, sub)| {
                    pool.with_workspace(|bws| {
                        inner
                            .clone()
                            .with_seed(seed.wrapping_add(*b as u64))
                            .solve_cancel(sub, bws, token)
                    })
                })
                .collect()
        });

        let mut reports = Vec::with_capacity(jobs.len());
        for ((b, _), result) in jobs.iter().zip(solved) {
            reports.push((*b, result?));
        }
        for (b, report) in &reports {
            let (rows, cols) = (&rows_of[*b], &cols_of[*b]);
            for (li, &i) in rows.iter().enumerate() {
                let lj = report.matching.rmate(li);
                rmate[i as usize] = if lj == NIL { NIL } else { cols[lj as usize] };
            }
            for (lj, &j) in cols.iter().enumerate() {
                let li = report.matching.cmate(lj);
                cmate[j as usize] = if li == NIL { NIL } else { rows[li as usize] };
            }
        }

        // Per-block stage reports while they stay readable; one aggregate
        // line for decompositions with many solved blocks.
        const MAX_PER_BLOCK_REPORTS: usize = 8;
        if reports.len() <= MAX_PER_BLOCK_REPORTS {
            for (b, report) in &reports {
                stages.push(StageReport {
                    stage: format!("dm[{b}]:{}", inner.spec()),
                    seconds: report.total_seconds(),
                    cardinality: Some(report.cardinality()),
                    augmentations: None,
                    phases: None,
                    selected: None,
                    weight: report.weight,
                });
            }
        } else {
            stages.push(StageReport {
                stage: format!("dm[{} blocks]:{}", reports.len(), inner.spec()),
                seconds: t1.elapsed().as_secs_f64(),
                cardinality: Some(reports.iter().map(|(_, r)| r.cardinality()).sum()),
                augmentations: None,
                phases: None,
                selected: None,
                weight: None,
            });
        }

        Ok(SolveReport {
            matching: Matching::from_mates(rmate, cmate),
            stages,
            scaling_iterations: None,
            scaling_error: None,
            quality: None,
            cancelled: false,
            deadline_ms: None,
            weight: None,
        })
    }
}

/// Run a weighted workload: the scaled entries `s_ij = d_r[i]·d_c[j]`
/// become edge weights (the paper's probability bridge — the doubly
/// stochastic limit assigns each entry its probability of being matched,
/// so the weighted heuristics chase exactly the edges scaling considers
/// likely), the bipartite instance becomes one undirected graph over
/// rows-then-columns, and the selected heuristic matches it. Returns the
/// matching translated back to bipartite mates plus its total weight.
fn run_weighted(
    kind: WeightedKind,
    g: &BipartiteGraph,
    ws: &mut Workspace,
    token: &CancelToken,
) -> Result<(Matching, f64), Cancelled> {
    token.check()?;
    let n_r = g.nrows();
    let Workspace { scaling, weighted_edges, .. } = ws;
    weighted_edges.clear();
    for i in 0..n_r {
        for &j in g.row_adj(i) {
            let w = scaling.entry(i, j as usize);
            // Guard degenerate factors (structurally deficient instances
            // scale entries to 0 or non-finite values): keep every edge
            // usable with the smallest positive weight instead.
            let w = if w.is_finite() && w > 0.0 { w } else { f64::MIN_POSITIVE };
            weighted_edges.push((i, n_r + j as usize, w));
        }
    }
    let wg = WeightedGraph::from_weighted_edges(n_r + g.ncols(), weighted_edges);
    token.check()?;
    let um = match kind {
        WeightedKind::GreedyWeighted => greedy_weighted(&wg),
        WeightedKind::PathGrowing => path_growing(&wg),
        WeightedKind::Suitor => suitor(&wg),
        WeightedKind::SuitorParallel => suitor_parallel(&wg),
    };
    let weight = matching_weight(&wg, &um);
    let mut matching = Matching::new(n_r, g.ncols());
    for (u, v) in um.iter_pairs() {
        debug_assert!(u < n_r && v >= n_r, "bipartite edges cross sides");
        matching.set(u, v - n_r);
    }
    Ok((matching, weight))
}

impl Solver for AlgorithmKind {
    /// Single-stage solve with the default seed — equivalent to
    /// [`Pipeline::bare`]. Use a [`Pipeline`] to control seed and stages.
    fn solve(&self, g: &BipartiteGraph, ws: &mut Workspace) -> SolveReport {
        Pipeline::bare(*self).solve(g, ws)
    }

    fn describe(&self) -> String {
        self.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip() {
        for spec in [
            "two",
            "hk",
            "scale:sk:5,two",
            "scale:ruiz:10,one",
            "scale:sk:5,two,pf",
            "scale:sk:0,ksmt,hk",
            "cheap,bfs",
            "scale:sk:5,two,pf-par",
            "scale:sk:5,two,hk-par",
            "scale:sk:5,two,pf-graft",
            "scale:sk:5,two,auto",
            "pf-par",
            "auto",
            // v2: weighted workloads and decomposition prefixes.
            "scale:sk:5,suitor",
            "greedy-w",
            "path-grow",
            "suitor-par",
            "scale:ruiz:3,greedy-w",
            "dm,two,pf",
            "dm,scale:sk:5,two",
            "dm,hk",
            "dm,suitor",
        ] {
            let p: Pipeline = spec.parse().unwrap();
            assert_eq!(p.spec(), spec, "roundtrip of {spec}");
            let again: Pipeline = p.spec().parse().unwrap();
            assert_eq!(again, p);
        }
    }

    #[test]
    fn spec_sugar_and_errors() {
        let p: Pipeline = "scale,two".parse().unwrap();
        assert_eq!(p.spec(), format!("scale:sk:{DEFAULT_SCALE_ITERATIONS},two"));
        let p: Pipeline = "scale:8,two".parse().unwrap();
        assert_eq!(p.scale.unwrap().config.max_iterations, 8);
        assert!("".parse::<Pipeline>().is_err());
        assert!("scale".parse::<Pipeline>().is_err(), "scale alone names no algorithm");
        assert!("two,ks".parse::<Pipeline>().is_err(), "finisher must be exact");
        assert!("hk,pf".parse::<Pipeline>().is_err(), "exact + finisher is redundant");
        assert!("scale:bogus,two".parse::<Pipeline>().is_err());
        assert!("scale,two,pf,hk".parse::<Pipeline>().is_err());
        assert!("two,,pf".parse::<Pipeline>().is_err());
    }

    #[test]
    fn v2_spec_errors_are_typed() {
        assert!(matches!(
            "dm".parse::<Pipeline>().unwrap_err(),
            SpecError::EmptyDecomposition { .. }
        ));
        assert!(matches!(
            "dm,dm,two".parse::<Pipeline>().unwrap_err(),
            SpecError::NestedDecomposition { .. }
        ));
        assert!(matches!(
            "two,dm".parse::<Pipeline>().unwrap_err(),
            SpecError::MisplacedDecomposition { .. }
        ));
        assert!(matches!(
            "dm,two,dm".parse::<Pipeline>().unwrap_err(),
            SpecError::MisplacedDecomposition { .. }
        ));
        assert!(matches!(
            "scale:sk:5,dm,two".parse::<Pipeline>().unwrap_err(),
            SpecError::MisplacedDecomposition { .. }
        ));
        assert_eq!(
            "suitor,hk".parse::<Pipeline>().unwrap_err(),
            SpecError::WeightedWithFinisher {
                algorithm: WeightedKind::Suitor,
                finisher: AlgorithmKind::HopcroftKarp,
            },
        );
        assert_eq!(
            "two,suitor".parse::<Pipeline>().unwrap_err(),
            SpecError::WeightedAsFinisher { finisher: WeightedKind::Suitor },
        );
        // Mid-spec scale tokens were never workload names — the v1 error.
        assert_eq!(
            "scale:sk:5,scale,two".parse::<Pipeline>().unwrap_err(),
            SpecError::UnknownAlgorithm { name: "scale".into() },
        );
    }

    #[test]
    fn weighted_solve_reports_weight() {
        let g = crate::gen::erdos_renyi_square(200, 4.0, 11);
        let mut ws = Workspace::new();
        let p: Pipeline = "scale:sk:5,suitor".parse().unwrap();
        let report = p.solve(&g, &mut ws);
        report.matching.verify(&g).unwrap();
        let w = report.weight.expect("weighted workloads report a weight");
        assert!(w.is_finite() && w > 0.0);
        assert_eq!(report.stages.last().unwrap().weight, Some(w));
    }

    #[test]
    fn dm_solve_reaches_sprank_with_exact_inner() {
        let g = crate::gen::erdos_renyi_square(300, 3.0, 5);
        let mut ws = Workspace::new();
        let p: Pipeline = "dm,two,pf".parse().unwrap();
        let report = p.solve(&g, &mut ws);
        report.matching.verify(&g).unwrap();
        assert_eq!(report.cardinality(), dsmatch_exact::sprank(&g));
        assert_eq!(report.stages[0].stage, "dm");
    }

    #[test]
    fn classic_matches_spec_semantics() {
        let p = Pipeline::classic(AlgorithmKind::TwoSided, 5, 42);
        assert_eq!(p.spec(), "scale:sk:5,two");
        assert_eq!(p.seed, 42);
        // Non-sampling algorithms get no scale stage.
        let p = Pipeline::classic(AlgorithmKind::KarpSipser, 5, 1);
        assert_eq!(p.spec(), "ks");
    }
}
