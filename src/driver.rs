//! Unified algorithm driver: one enum over every matching algorithm in the
//! workspace, used by the `dsmatch` CLI and handy for harnesses that sweep
//! algorithms uniformly.

use dsmatch_core::{
    cheap_random_edge, cheap_random_vertex, karp_sipser, one_sided_match, two_sided_match,
    KarpSipserConfig, OneSidedConfig, TwoSidedConfig,
};
use dsmatch_exact::{bfs_augment, hopcroft_karp, pothen_fan, push_relabel};
use dsmatch_graph::{BipartiteGraph, Matching};
use dsmatch_scale::ScalingConfig;

/// Every matching algorithm the workspace implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Paper Algorithm 2 (guarantee 1 − 1/e).
    OneSided,
    /// Paper Algorithm 3 (conjectured 0.866).
    TwoSided,
    /// Classic Karp–Sipser heuristic.
    KarpSipser,
    /// Random-edge greedy (½).
    CheapEdge,
    /// Random-vertex greedy (½ + ε).
    CheapVertex,
    /// Exact: Hopcroft–Karp.
    HopcroftKarp,
    /// Exact: Pothen–Fan with lookahead.
    PothenFan,
    /// Exact: push-relabel / auction.
    PushRelabel,
    /// Exact: single-path BFS augmentation.
    BfsAugment,
}

impl Algorithm {
    /// All algorithms, heuristics first.
    pub fn all() -> [Algorithm; 9] {
        use Algorithm::*;
        [
            OneSided,
            TwoSided,
            KarpSipser,
            CheapEdge,
            CheapVertex,
            HopcroftKarp,
            PothenFan,
            PushRelabel,
            BfsAugment,
        ]
    }

    /// True for the exact (maximum-cardinality) algorithms.
    pub fn is_exact(&self) -> bool {
        matches!(
            self,
            Algorithm::HopcroftKarp
                | Algorithm::PothenFan
                | Algorithm::PushRelabel
                | Algorithm::BfsAugment
        )
    }

    /// Short CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::OneSided => "one",
            Algorithm::TwoSided => "two",
            Algorithm::KarpSipser => "ks",
            Algorithm::CheapEdge => "cheap",
            Algorithm::CheapVertex => "cheap-vertex",
            Algorithm::HopcroftKarp => "hk",
            Algorithm::PothenFan => "pf",
            Algorithm::PushRelabel => "pr",
            Algorithm::BfsAugment => "bfs",
        }
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Algorithm::all().into_iter().find(|a| a.name() == s).ok_or_else(|| {
            let names: Vec<&str> = Algorithm::all().iter().map(|a| a.name()).collect();
            format!("unknown algorithm {s:?}; expected one of {}", names.join("|"))
        })
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs shared by the randomized algorithms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunConfig {
    /// Sinkhorn–Knopp iterations for the scaling-based heuristics.
    pub scaling_iterations: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { scaling_iterations: 5, seed: 1 }
    }
}

/// Run `algo` on `g`. Parallel algorithms use the ambient Rayon pool.
pub fn run(algo: Algorithm, g: &BipartiteGraph, cfg: &RunConfig) -> Matching {
    let scaling = ScalingConfig::iterations(cfg.scaling_iterations);
    match algo {
        Algorithm::OneSided => one_sided_match(g, &OneSidedConfig { scaling, seed: cfg.seed }),
        Algorithm::TwoSided => two_sided_match(g, &TwoSidedConfig { scaling, seed: cfg.seed }),
        Algorithm::KarpSipser => karp_sipser(g, &KarpSipserConfig { seed: cfg.seed }).matching,
        Algorithm::CheapEdge => cheap_random_edge(g, cfg.seed),
        Algorithm::CheapVertex => cheap_random_vertex(g, cfg.seed),
        Algorithm::HopcroftKarp => hopcroft_karp(g),
        Algorithm::PothenFan => pothen_fan(g),
        Algorithm::PushRelabel => push_relabel(g),
        Algorithm::BfsAugment => bfs_augment(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for a in Algorithm::all() {
            let parsed: Algorithm = a.name().parse().unwrap();
            assert_eq!(parsed, a);
            assert_eq!(a.to_string(), a.name());
        }
        assert!("nope".parse::<Algorithm>().is_err());
    }

    #[test]
    fn exact_algorithms_agree_heuristics_bounded() {
        let g = dsmatch_gen::erdos_renyi_square(2_000, 4.0, 9);
        let cfg = RunConfig::default();
        let opt = run(Algorithm::HopcroftKarp, &g, &cfg).cardinality();
        for a in Algorithm::all() {
            let m = run(a, &g, &cfg);
            m.verify(&g).unwrap();
            if a.is_exact() {
                assert_eq!(m.cardinality(), opt, "{a} not exact");
            } else {
                assert!(m.cardinality() <= opt, "{a} exceeded the optimum");
                assert!(
                    2 * m.cardinality() >= opt,
                    "{a} below the ½ floor every variant clears in practice"
                );
            }
        }
    }
}
