//! `dsmatch` command-line tool: run any of the workspace's matching
//! algorithms on a Matrix Market file or a synthesized instance.
//!
//! ```text
//! dsmatch <matrix.mtx | gen:er:<n>:<avg_degree>[:<seed>]>
//!         [--algo one|two|ks|cheap|cheap-vertex|hk|pf|pr|bfs]
//!         [--iters N] [--seed S] [--threads T]
//!         [--quality] [--output pairs.txt]
//! ```
//!
//! `--quality` additionally computes the exact optimum (Hopcroft–Karp) and
//! reports the quality ratio — the measurement protocol of the paper's §4.
//! `--output` writes the matched `(row, col)` pairs (1-based) to a file.

use dsmatch::driver::{run, Algorithm, RunConfig};
use dsmatch::prelude::*;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| *a == flag).and_then(|k| args.get(k + 1).cloned()).or_else(|| {
        args.iter().find_map(|a| a.strip_prefix(&format!("--{name}=")).map(String::from))
    })
}

/// Load a Matrix Market file, or synthesize an instance from a `gen:` spec
/// (`gen:er:<n>:<avg_degree>[:<seed>]` — an n×n Erdős–Rényi pattern), so
/// smoke tests and quick experiments need no matrix files on disk.
fn load_graph(path: &str) -> Result<BipartiteGraph, String> {
    let Some(spec) = path.strip_prefix("gen:") else {
        let csr = dsmatch::graph::io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
        return Ok(BipartiteGraph::from_csr(csr));
    };
    let usage = "expected gen:er:<n>:<avg_degree>[:<seed>]";
    match spec.split(':').collect::<Vec<_>>().as_slice() {
        ["er", n, d, rest @ ..] => {
            let n: usize = n.parse().map_err(|_| format!("bad size {n:?}; {usage}"))?;
            if n == 0 {
                return Err(format!("size must be positive; {usage}"));
            }
            let d: f64 = d.parse().map_err(|_| format!("bad degree {d:?}; {usage}"))?;
            if !d.is_finite() || d <= 0.0 {
                return Err(format!("degree must be positive and finite; {usage}"));
            }
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| format!("bad seed {s:?}; {usage}"))?,
                _ => return Err(format!("trailing fields in gen spec {spec:?}; {usage}")),
            };
            Ok(dsmatch::gen::erdos_renyi_square(n, d, seed))
        }
        _ => Err(format!("unsupported gen spec {spec:?}; {usage}")),
    }
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1).filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: dsmatch <matrix.mtx | gen:er:<n>:<avg_degree>[:<seed>]> \
             [--algo one|two|ks|cheap|cheap-vertex|hk|pf|pr|bfs] \
             [--iters N] [--seed S] [--threads T] [--quality] [--output pairs.txt]"
        );
        return ExitCode::FAILURE;
    };
    let algo: Algorithm = match arg_value("algo").unwrap_or_else(|| "two".into()).parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = RunConfig {
        scaling_iterations: arg_value("iters").and_then(|v| v.parse().ok()).unwrap_or(5),
        seed: arg_value("seed").and_then(|v| v.parse().ok()).unwrap_or(1),
    };
    let want_quality = std::env::args().any(|a| a == "--quality");

    if let Some(t) = arg_value("threads").and_then(|v| v.parse::<usize>().ok()) {
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build_global()
            .expect("thread pool already initialized");
    }

    let t0 = Instant::now();
    let g = match load_graph(&path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {} × {} with {} entries in {:.2?}",
        g.nrows(),
        g.ncols(),
        g.nnz(),
        t0.elapsed()
    );

    let t0 = Instant::now();
    let m = run(algo, &g, &cfg);
    let dt = t0.elapsed();
    if let Err(e) = m.verify(&g) {
        eprintln!("INTERNAL ERROR: produced an invalid matching: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "algorithm     : {algo}{}",
        if algo.is_exact() {
            " (exact)".to_string()
        } else {
            format!(" (scaling iterations: {}, seed: {})", cfg.scaling_iterations, cfg.seed)
        }
    );
    println!("cardinality   : {}", m.cardinality());
    println!("time          : {dt:.3?}");
    if want_quality {
        let opt = sprank(&g);
        println!("optimum       : {opt}");
        println!("quality       : {:.4}", m.quality(opt));
    }
    if let Some(out) = arg_value("output") {
        let mut f = match std::fs::File::create(&out) {
            Ok(f) => std::io::BufWriter::new(f),
            Err(e) => {
                eprintln!("cannot create {out}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (i, j) in m.iter_pairs() {
            if writeln!(f, "{} {}", i + 1, j + 1).is_err() {
                eprintln!("write to {out} failed");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("wrote {} pairs to {out}", m.cardinality());
    }
    ExitCode::SUCCESS
}
