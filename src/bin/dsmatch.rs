//! `dsmatch` command-line tool: run any pipeline of the workspace's solver
//! engine on a Matrix Market file or a synthesized instance.
//!
//! ```text
//! dsmatch <matrix.mtx | gen:er:<n>:<avg_degree>[:<seed>]>
//!         [--pipeline [dm,][scale[:sk|ruiz][:iters],]<workload>[,<exact-finisher>]]
//!         [--algo one|two|ks|ksmt|one-out|cheap|cheap-vertex|hk|pf|pr|bfs|hk-par|pf-par|pf-graft|auto]
//!         [--iters N] [--seed S] [--batch N] [--batch-par] [--threads T]
//!         [--quality] [--json] [--output pairs.txt]
//! ```
//!
//! `--pipeline` takes a full engine spec (e.g. `scale:sk:5,two,pf`);
//! `--algo` plus `--iters` is the classic shorthand for the same thing
//! (`--algo two --iters 5` ≡ `--pipeline scale:sk:5,two`).
//!
//! Grammar v2 workloads go beyond the cardinality registry: the weighted
//! heuristics `greedy-w|path-grow|suitor|suitor-par` match on the scaling
//! entries as edge weights (`scale:sk:5,suitor` reports a `weight`
//! alongside cardinality), and a `dm,` prefix (`dm,two,pf`) runs the
//! coarse+fine Dulmage–Mendelsohn decomposition first, solving each fine
//! block independently with the inner pipeline.
//!
//! `--batch N` solves the instance `N` times with seeds `S, S+1, …`,
//! reusing one engine [`Workspace`] so only the first solve allocates — the
//! batch/server mode of the engine layer. Adding `--batch-par` fans the
//! batch across a [`WorkspacePool`] (one reusable workspace per worker):
//! solves run concurrently — batch-level instead of stage-level
//! parallelism — while each run's result stays byte-identical to its
//! 1-thread solve and reports keep their submission order.
//!
//! `--quality` additionally computes the exact optimum (Hopcroft–Karp) and
//! reports the quality ratio — the measurement protocol of the paper's §4.
//! `--json` prints one machine-readable JSON object instead of text.
//! `--output` writes the matched `(row, col)` pairs (1-based) of the best
//! run to a file.
//!
//! ## Daemon mode
//!
//! ```text
//! dsmatch serve [--threads T] [--max-queue N] [--cache-mb M] [--socket PATH]
//!               [--max-clients C] [--default-deadline-ms D] [--max-line-mb L]
//! ```
//!
//! runs the matching-as-a-service daemon: newline-delimited JSON jobs in
//! (stdin, or a Unix socket with `--socket` — served **concurrently**, one
//! session per client), one JSON report line out per job as it completes —
//! each job carrying its own pipeline spec, instance reference (inline
//! pattern, `gen:` spec, or a cached handle), optionally an incremental
//! `delta` re-solve against a cached instance, and optionally a
//! `"deadline_ms"` budget after which the solve is cancelled cooperatively
//! (`--default-deadline-ms` supplies one to jobs that carry none).
//! SIGTERM, stdin close, and the `shutdown` op all drain in-flight jobs
//! before exiting. See [`dsmatch::engine::serve`] for the protocol.

use dsmatch::engine::{
    Json, Pipeline, ServeOptions, SolveReport, Solver, Workspace, WorkspacePool,
};
use dsmatch::prelude::*;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| *a == flag).and_then(|k| args.get(k + 1).cloned()).or_else(|| {
        args.iter().find_map(|a| a.strip_prefix(&format!("--{name}=")).map(String::from))
    })
}

fn flag(name: &str) -> bool {
    let needle = format!("--{name}");
    std::env::args().any(|a| a == needle)
}

/// Load a Matrix Market file, or synthesize an instance from a `gen:` spec
/// (`gen:er:<n>:<avg_degree>[:<seed>]` — an n×n Erdős–Rényi pattern), so
/// smoke tests and quick experiments need no matrix files on disk.
fn load_graph(path: &str) -> Result<BipartiteGraph, String> {
    match path.strip_prefix("gen:") {
        // One grammar for the CLI positional and the serve protocol's
        // string instance refs: the engine owns the gen-spec parser.
        Some(spec) => dsmatch::engine::parse_gen_spec(spec),
        None => {
            let csr =
                dsmatch::graph::io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
            Ok(BipartiteGraph::from_csr(csr))
        }
    }
}

fn geometric_mean(xs: &[f64]) -> f64 {
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

fn print_usage() {
    eprintln!(
        "usage: dsmatch <matrix.mtx | gen:er:<n>:<avg_degree>[:<seed>]> \
         [--pipeline [dm,][scale[:sk|ruiz][:iters],]<workload>[,<exact-finisher>]] \
         (workloads: any --algo name, or weighted greedy-w|path-grow|suitor|suitor-par) \
         [--algo one|two|ks|ksmt|one-out|cheap|cheap-vertex|hk|pf|pr|bfs|hk-par|pf-par|pf-graft|auto] \
         [--iters N] [--seed S] [--batch N] [--batch-par] [--threads T] \
         [--quality] [--json] [--output pairs.txt]\n\
         \x20      dsmatch serve [--threads T] [--max-queue N] [--cache-mb M] [--socket PATH] \
         [--max-clients C] [--default-deadline-ms D] [--max-line-mb L]"
    );
}

/// SIGTERM latch: the handler only flips this flag; the serve daemon
/// polls it and drains in-flight jobs before exiting, so `kill <pid>`
/// gets the same guarantees as a `shutdown` op.
static TERM: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_latch() {
    const SIGTERM: i32 = 15;
    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SAFETY: `signal` is async-signal-safe to install, and the handler
    // only performs an atomic store (itself async-signal-safe).
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_latch() {}

/// `dsmatch serve`: run the matching daemon over stdin/stdout, or over a
/// Unix socket with `--socket PATH`.
fn serve_main() -> ExitCode {
    let mut opts = ServeOptions::default();
    for (name, slot) in [
        ("threads", &mut opts.threads),
        ("max-queue", &mut opts.max_queue),
        ("max-clients", &mut opts.max_clients),
    ] {
        if let Some(v) = arg_value(name) {
            match v.parse() {
                Ok(n) => *slot = n,
                Err(_) => {
                    eprintln!("--{name} expects a non-negative integer, got {v:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if opts.max_queue == 0 {
        eprintln!("--max-queue 0 would reject every job; pass a positive bound");
        return ExitCode::FAILURE;
    }
    for (name, slot) in
        [("cache-mb", &mut opts.cache_bytes), ("max-line-mb", &mut opts.max_line_bytes)]
    {
        if let Some(v) = arg_value(name) {
            match v.parse::<usize>() {
                Ok(mb) => *slot = mb << 20,
                Err(_) => {
                    eprintln!("--{name} expects a non-negative integer, got {v:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(v) = arg_value("default-deadline-ms") {
        match v.parse::<u64>() {
            Ok(ms) => opts.default_deadline_ms = ms,
            Err(_) => {
                eprintln!("--default-deadline-ms expects a non-negative integer, got {v:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    install_sigterm_latch();
    opts.stop = Some(&TERM);
    match arg_value("socket") {
        Some(path) => {
            #[cfg(unix)]
            match dsmatch::engine::serve_unix_socket(std::path::Path::new(&path), &opts) {
                Ok(summary) => {
                    eprintln!(
                        "served {} jobs ({} ok, {} errors)",
                        summary.jobs, summary.ok, summary.errors
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("serve: socket {path}: {e}");
                    ExitCode::FAILURE
                }
            }
            #[cfg(not(unix))]
            {
                eprintln!("serve: --socket {path} requires a Unix platform; use stdin mode");
                ExitCode::FAILURE
            }
        }
        None => {
            // `Stdin` itself (not its non-Send lock) goes to the daemon's
            // detached reader thread.
            let input = std::io::BufReader::new(std::io::stdin());
            let summary = dsmatch::engine::serve(input, std::io::stdout(), &opts);
            eprintln!(
                "served {} jobs ({} ok, {} errors)",
                summary.jobs, summary.ok, summary.errors
            );
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1).filter(|a| !a.starts_with("--")) else {
        print_usage();
        return ExitCode::FAILURE;
    };
    if path == "serve" {
        return serve_main();
    }
    let seed: u64 = arg_value("seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let pipeline = match arg_value("pipeline") {
        Some(spec) => {
            for shadowed in ["algo", "iters"] {
                if arg_value(shadowed).is_some() {
                    eprintln!(
                        "--{shadowed} is ignored when --pipeline is given; \
                         put the stage in the pipeline spec instead"
                    );
                }
            }
            match spec.parse::<Pipeline>() {
                Ok(p) => p.with_seed(seed),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let algo = match arg_value("algo").unwrap_or_else(|| "two".into()).parse() {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let iters = arg_value("iters").and_then(|v| v.parse().ok()).unwrap_or(5);
            Pipeline::classic(algo, iters, seed)
        }
    };
    let batch_arg = arg_value("batch");
    let batch_par = flag("batch-par");
    if batch_par && batch_arg.is_none() {
        eprintln!(
            "--batch-par parallelizes across the runs of a batch and \
             requires --batch N; pass both or drop --batch-par"
        );
        return ExitCode::FAILURE;
    }
    let batch: usize = match batch_arg {
        None => 1,
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--batch expects a positive number of runs, got {v:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    let want_quality = flag("quality");
    let want_json = flag("json");

    // `--threads T` builds a workspace-owned pool of exactly T workers;
    // without the flag, solves use the ambient pool (RAYON_NUM_THREADS or
    // the machine's available parallelism). With `--batch-par` the pool
    // instead backs a WorkspacePool that fans whole batch runs across the
    // workers. The probe below counts the distinct worker threads that
    // actually execute a parallel region, so the report states genuine
    // parallelism, not a configured wish.
    let threads_requested = match arg_value("threads") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(0) => {
                eprintln!(
                    "--threads 0 is not a thread count; pass a positive number \
                     (or omit --threads for the ambient pool size)"
                );
                return ExitCode::FAILURE;
            }
            Ok(t) => Some(t),
            Err(_) => {
                eprintln!("--threads expects a positive number of workers, got {v:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    let batch_pool = batch_par.then(|| Workspace::per_worker(threads_requested.unwrap_or(0)));
    let mut ws = match (&batch_pool, threads_requested) {
        (Some(_), _) => Workspace::new(), // unused; solves go through the pool
        (None, Some(t)) => Workspace::with_threads(t),
        (None, None) => Workspace::new(),
    };
    let pool_size = batch_pool.as_ref().map_or_else(|| ws.threads(), WorkspacePool::threads);
    let observed_workers = match &batch_pool {
        Some(p) => p.run(dsmatch::engine::observed_parallelism),
        None => ws.run(dsmatch::engine::observed_parallelism),
    };
    eprintln!("thread pool: {pool_size} threads ({observed_workers} distinct workers observed)");

    let t0 = Instant::now();
    let g = match load_graph(&path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {} × {} with {} entries in {:.2?}",
        g.nrows(),
        g.ncols(),
        g.nnz(),
        t0.elapsed()
    );

    // Batch mode: N solves with seeds S, S+1, … — sequentially reusing one
    // workspace, or (--batch-par) fanned across the workspace pool with
    // reports kept in submission order.
    let mut reports: Vec<SolveReport> = match &batch_pool {
        Some(pool) => {
            let jobs: Vec<(&dsmatch::graph::BipartiteGraph, u64)> =
                (0..batch).map(|k| (&g, seed.wrapping_add(k as u64))).collect();
            pipeline.solve_batch(&jobs, pool)
        }
        None => (0..batch)
            .map(|k| pipeline.clone().with_seed(seed.wrapping_add(k as u64)).solve(&g, &mut ws))
            .collect(),
    };
    for report in &reports {
        if let Err(e) = report.matching.verify(&g) {
            eprintln!("INTERNAL ERROR: produced an invalid matching: {e}");
            return ExitCode::FAILURE;
        }
    }
    let optimum = want_quality.then(|| sprank(&g));
    if let Some(opt) = optimum {
        for report in &mut reports {
            report.set_quality(opt);
        }
    }

    let best =
        reports.iter().enumerate().max_by_key(|(_, r)| r.cardinality()).map(|(k, _)| k).unwrap();
    let times: Vec<f64> = reports.iter().map(|r| r.total_seconds()).collect();

    if want_json {
        let runs: Vec<Json> = reports
            .iter()
            .enumerate()
            .map(|(k, r)| {
                let Json::Obj(mut pairs) = r.to_json() else { unreachable!("reports are objects") };
                pairs.insert(0, ("seed".into(), Json::from(seed.wrapping_add(k as u64))));
                Json::Obj(pairs)
            })
            .collect();
        let doc = Json::obj(vec![
            (
                "instance",
                Json::obj(vec![
                    ("source", Json::from(path.as_str())),
                    ("nrows", Json::from(g.nrows())),
                    ("ncols", Json::from(g.ncols())),
                    ("nnz", Json::from(g.nnz())),
                ]),
            ),
            ("pipeline", Json::from(pipeline.spec())),
            (
                "threads",
                Json::obj(vec![
                    ("requested", Json::opt(threads_requested)),
                    ("pool", Json::from(pool_size)),
                    ("observed_workers", Json::from(observed_workers)),
                    ("batch_par", Json::from(batch_par)),
                ]),
            ),
            ("optimum", Json::opt(optimum)),
            ("runs", Json::Arr(runs)),
            (
                "summary",
                Json::obj(vec![
                    ("solves", Json::from(batch)),
                    ("best_cardinality", Json::from(reports[best].cardinality())),
                    ("total_seconds", Json::from(times.iter().sum::<f64>())),
                    ("geomean_seconds", Json::from(geometric_mean(&times))),
                ]),
            ),
        ]);
        println!("{doc}");
    } else {
        println!("pipeline      : {pipeline}");
        for (k, report) in reports.iter().enumerate() {
            if batch > 1 {
                println!("run {k:>3}       : seed {}", seed.wrapping_add(k as u64));
            }
            for stage in &report.stages {
                let card =
                    stage.cardinality.map_or(String::new(), |c| format!("  cardinality {c}"));
                let augs =
                    stage.augmentations.map_or(String::new(), |a| format!("  augmentations {a}"));
                let phases = stage.phases.map_or(String::new(), |p| format!("  phases {p}"));
                let sel =
                    stage.selected.as_deref().map_or(String::new(), |s| format!("  selected {s}"));
                let sw = stage.weight.map_or(String::new(), |w| format!("  weight {w:.6}"));
                println!(
                    "  {:<12}: {:>10.3?}{card}{augs}{phases}{sel}{sw}",
                    stage.stage, stage.seconds
                );
            }
            println!("cardinality   : {}", report.cardinality());
            if let Some(w) = report.weight {
                println!("weight        : {w:.6}");
            }
            println!("time          : {:.3}s", report.total_seconds());
            if let (Some(opt), Some(q)) = (optimum, report.quality) {
                println!("optimum       : {opt}");
                println!("quality       : {q:.4}");
            }
        }
        if batch > 1 {
            println!(
                "batch summary : {} solves, best cardinality {}, geomean time {:.3}s",
                batch,
                reports[best].cardinality(),
                geometric_mean(&times)
            );
        }
    }

    if let Some(out) = arg_value("output") {
        let mut f = match std::fs::File::create(&out) {
            Ok(f) => std::io::BufWriter::new(f),
            Err(e) => {
                eprintln!("cannot create {out}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let m = &reports[best].matching;
        for (i, j) in m.iter_pairs() {
            if writeln!(f, "{} {}", i + 1, j + 1).is_err() {
                eprintln!("write to {out} failed");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("wrote {} pairs to {out}", m.cardinality());
    }
    ExitCode::SUCCESS
}
