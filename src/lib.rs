//! # dsmatch — bipartite matching heuristics with quality guarantees
//!
//! A faithful, production-quality Rust reproduction of
//!
//! > F. Dufossé, K. Kaya, B. Uçar, *Bipartite matching heuristics with
//! > quality guarantees on shared memory parallel computers*,
//! > Inria Research Report RR-8386 (2013), IPPS/IPDPS 2014.
//!
//! This facade crate re-exports the full workspace:
//!
//! - [`graph`] — sparse bipartite-graph substrate (CSR/CSC, matchings,
//!   components, Matrix Market I/O, deterministic PRNG);
//! - [`scale`] — doubly-stochastic scaling (parallel Sinkhorn–Knopp,
//!   paper Algorithm 1; Ruiz equilibration as an alternative);
//! - [`heur`] — the paper's heuristics: `OneSidedMatch` (Alg. 2, ≥ 0.632
//!   guarantee), `TwoSidedMatch` (Alg. 3, conjectured 0.866),
//!   `KarpSipserMT` (Alg. 4), plus the classic Karp–Sipser and cheap-matching
//!   baselines;
//! - [`exact`] — exact maximum-cardinality matching (Hopcroft–Karp,
//!   Pothen–Fan) and `sprank`;
//! - [`dm`] — Dulmage–Mendelsohn decomposition;
//! - [`gen`] — instance generators, including surrogates for the paper's
//!   test matrices;
//! - [`engine`] — the unified solver engine: every algorithm behind one
//!   [`Solver`](engine::Solver) trait, composable
//!   `scale → heuristic → augment` [`Pipeline`](engine::Pipeline)s, a
//!   reusable [`Workspace`](engine::Workspace) so batch workloads stop
//!   allocating per solve, and instrumented
//!   [`SolveReport`](engine::SolveReport)s.
//!
//! ## Quickstart
//!
//! ```
//! use dsmatch::prelude::*;
//!
//! // An Erdős–Rényi bipartite graph with ~4 nonzeros per row.
//! let graph = dsmatch::gen::erdos_renyi_square(1_000, 4.0, 42);
//!
//! // OneSidedMatch: scale, then let every row sample one column.
//! let cfg = OneSidedConfig { scaling: ScalingConfig::iterations(5), seed: 7 };
//! let matching = one_sided_match(&graph, &cfg);
//! matching.verify(&graph).unwrap();
//!
//! // Guarantee: at least (1 - 1/e) of the maximum cardinality, in expectation.
//! let optimum = dsmatch::exact::hopcroft_karp(&graph).cardinality();
//! assert!(matching.cardinality() as f64 >= 0.55 * optimum as f64);
//! ```
//!
//! For the composed protocol (scaling, heuristic, exact finisher) use the
//! engine instead of wiring the calls by hand:
//!
//! ```
//! use dsmatch::engine::{Pipeline, Solver, Workspace};
//!
//! let graph = dsmatch::gen::erdos_renyi_square(1_000, 4.0, 42);
//! let pipeline: Pipeline = "scale:sk:5,two,pf".parse().unwrap();
//! let report = pipeline.solve(&graph, &mut Workspace::new());
//! assert_eq!(report.cardinality(), dsmatch::exact::sprank(&graph));
//! ```

#![forbid(unsafe_code)]

pub mod engine;

pub use dsmatch_core as heur;
pub use dsmatch_dm as dm;
pub use dsmatch_exact as exact;
pub use dsmatch_gen as gen;
pub use dsmatch_graph as graph;
pub use dsmatch_scale as scale;
pub use dsmatch_weighted as weighted;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use dsmatch_core::{
        karp_sipser, karp_sipser_mt, one_sided_match, two_sided_match, KarpSipserConfig,
        OneSidedConfig, TwoSidedConfig,
    };
    pub use dsmatch_exact::{hopcroft_karp, sprank};
    pub use dsmatch_graph::{BipartiteGraph, Csr, Matching, SplitMix64, TripletMatrix, NIL};
    pub use dsmatch_scale::{sinkhorn_knopp, ScalingConfig, ScalingResult};
}
