//! # rayon (offline shim)
//!
//! A **sequential, deterministic** drop-in replacement for the subset of
//! [`rayon`](https://docs.rs/rayon)'s API that the `dsmatch` workspace uses.
//! The build environment has no access to crates.io, so the workspace vendors
//! this shim and selects it through `[workspace.dependencies]`; restoring the
//! real crate is a one-line change in the root `Cargo.toml`.
//!
//! Design notes:
//!
//! - Every "parallel" iterator here is a thin wrapper over the corresponding
//!   sequential `std::iter` adaptor, executed in deterministic order. This is
//!   semantically safe for `dsmatch` because the workspace's algorithms are
//!   *thread-count oblivious by construction* (per-index PRNG streams,
//!   associative reductions): the paper's determinism contract says results
//!   must be identical for every pool size, so pool size one is a valid
//!   execution.
//! - [`ThreadPool::install`] tracks the requested thread count in a
//!   thread-local so [`current_num_threads`] reports what the real rayon
//!   would, keeping thread-ladder experiment code and its tests meaningful.
//! - API-compat bounds (`Send`/`Sync`) are kept where they are cheap so code
//!   written against this shim stays compatible with the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;

/// Glob-import target mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

thread_local! {
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The number of threads in the current scope's pool.
///
/// Inside [`ThreadPool::install`] this is the pool's configured size; outside
/// it is the global pool size (set by [`ThreadPoolBuilder::build_global`]) or
/// the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed != 0 {
        return installed;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    default_threads()
}

/// Run two closures and return both results (sequentially: `a` then `b`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let ra = a();
    let rb = b();
    (ra, rb)
}

/// Error returned when a thread pool cannot be built (never happens in the
/// shim; kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool with the default (machine-sized) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request exactly `n` threads; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolved(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }

    /// Build a scoped pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.resolved() })
    }

    /// Install this configuration as the global pool.
    ///
    /// Unlike real rayon this never fails and later calls overwrite earlier
    /// ones; the shim only records the size so [`current_num_threads`]
    /// answers consistently.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.resolved(), Ordering::Relaxed);
        Ok(())
    }
}

/// A (virtual) thread pool: work `install`ed into it runs on the calling
/// thread, with [`current_num_threads`] reporting the configured size.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Execute `op` "inside" the pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_THREADS.with(Cell::get));
        INSTALLED_THREADS.with(|c| c.set(self.num_threads));
        op()
    }

    /// The configured size of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_scopes_thread_count() {
        let outer = current_num_threads();
        assert!(outer >= 1);
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let inner = pool.install(current_num_threads);
        assert_eq!(inner, 5);
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn install_restores_on_nesting() {
        let p3 = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let p7 = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let (a, b, c) = p3.install(|| {
            let before = current_num_threads();
            let nested = p7.install(current_num_threads);
            (before, nested, current_num_threads())
        });
        assert_eq!((a, b, c), (3, 7, 3));
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
