//! # rayon (offline shim) — real multicore edition
//!
//! A drop-in replacement for the subset of [`rayon`](https://docs.rs/rayon)'s
//! API that the `dsmatch` workspace uses, executing on a **genuine
//! `std::thread` worker pool**. The build environment has no access to
//! crates.io, so the workspace vendors this shim and selects it through
//! `[workspace.dependencies]`; restoring the real crate remains a one-line
//! change in the root `Cargo.toml`.
//!
//! ## Execution model
//!
//! - A pool of `N` workers owns `N` work-stealing deques in the Chase–Lev
//!   discipline: each worker pushes/pops its own deque at the back (LIFO),
//!   idle workers steal from a randomized victim's front (FIFO). External
//!   submissions are distributed round-robin; jobs spawned by a worker go
//!   to its own deque, where thieves can pick them up — skewed nested work
//!   load-balances instead of serializing on its spawner.
//! - Every parallel iterator splits its input into chunks whose boundaries
//!   depend only on the input length (and `with_min_len`/`with_max_len`
//!   hints), **never on the pool size**. Chunks become jobs on the current
//!   pool's deques; workers drain them dynamically. Consequences:
//!   - per-element operations (`for_each`, `par_iter_mut` writes) are
//!     genuinely concurrent, so shared state must use atomics — exactly
//!     the contract real rayon imposes;
//!   - ordered reductions (`sum`, `reduce`, `collect`) combine per-chunk
//!     partial results in chunk order, so floating-point outcomes are
//!     **bitwise identical for every pool size** (1 included), which the
//!     workspace's determinism tests rely on;
//!   - inputs at or below one chunk run inline on the calling thread.
//! - The *current pool* is the innermost [`ThreadPool::install`] on this
//!   thread, else the global pool ([`ThreadPoolBuilder::build_global`], or
//!   lazily `RAYON_NUM_THREADS`/available parallelism). A pool of size 1
//!   executes everything inline and is bit-for-bit the sequential
//!   schedule.
//!
//! ## Determinism contract (matches the paper's)
//!
//! The shim guarantees schedule-independent *chunking*; it does **not**
//! serialize racy algorithms. Code like `OneSidedMatch`'s benign
//! last-writer-wins races or `KarpSipserMT`'s CAS claims will observe real
//! interleavings: cardinalities and validity are schedule-independent by
//! algorithm design, byte-level mate arrays are not. See the workspace's
//! `tests/determinism.rs` for the precise per-algorithm contracts.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

mod eventcount;
mod hint_deque;
pub mod iter;
mod pool;

pub use pool::Scope;

/// Deadline for this crate's bounded scheduler waits in tests: the
/// `DSMATCH_TEST_TIMEOUT_SECS` environment variable when set to a
/// positive integer, else `default_secs`. One knob for every probe
/// deadline in the repo (the engine's observed-parallelism probe reads
/// the same variable; the reader is duplicated there because the
/// `real-rayon` CI leg compiles the workspace without this shim), so
/// loaded CI runners raise it in the workflow instead of tests flaking
/// on hard-coded laptop-scale numbers.
#[cfg(test)]
pub(crate) fn test_timeout(default_secs: u64) -> std::time::Duration {
    let secs = std::env::var("DSMATCH_TEST_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(default_secs);
    std::time::Duration::from_secs(secs)
}

/// Glob-import target mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// The number of threads in the current scope's pool.
///
/// Inside [`ThreadPool::install`] this is the pool's configured size; on a
/// pool worker thread it is that pool's size; otherwise it is the global
/// pool size (set by [`ThreadPoolBuilder::build_global`], the
/// `RAYON_NUM_THREADS` environment variable, or the machine's available
/// parallelism).
pub fn current_num_threads() -> usize {
    let w = pool::worker_pool_size();
    if w != 0 {
        return w;
    }
    pool::ambient_pool_size()
}

/// The index of the current thread within its pool, or `None` when the
/// current thread is not a pool worker — same contract as
/// `rayon::current_thread_index`. Callers use this to detect whether a
/// parallel region would dispatch (worker threads run regions inline).
pub fn current_thread_index() -> Option<usize> {
    pool::worker_index()
}

/// Run two closures, potentially in parallel, and return both results.
///
/// `a` runs on the calling thread; `b` is offered to the current pool.
/// When the current thread is itself a pool worker (or the pool has a
/// single thread), both run sequentially on the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match pool::dispatch_pool() {
        None => {
            let ra = a();
            let rb = b();
            (ra, rb)
        }
        Some(core) => {
            let mut rb = None;
            let rb_slot = &mut rb;
            let ra = core.scope(|s| {
                s.spawn(move |_| *rb_slot = Some(b()));
                a()
            });
            (ra, rb.expect("scope joined, spawned job must have run"))
        }
    }
}

/// Create a scoped-task region on the current pool: jobs spawned via
/// [`Scope::spawn`] may borrow local data, and `scope` blocks until all of
/// them finish (panics included — the first job panic is resumed here).
///
/// On a pool worker thread, spawned jobs run inline (deadlock-free
/// nesting); otherwise they execute on the current pool's workers.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    match pool::dispatch_pool() {
        Some(core) => core.scope(op),
        // Inline region: size-1 (or in-worker) scopes run spawns eagerly.
        None => pool::inline_scope(op),
    }
}

/// Error returned when a thread pool cannot be built (worker threads could
/// not be spawned).
#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool with the default thread count
    /// (`RAYON_NUM_THREADS` or the machine's available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request exactly `n` threads; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolved(&self) -> usize {
        if self.num_threads == 0 {
            pool::default_threads()
        } else {
            self.num_threads
        }
    }

    /// Build an owned pool with its own `std::thread` workers. Dropping
    /// the pool shuts the workers down and joins them. Fails when worker
    /// threads cannot be spawned (thread exhaustion).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let (core, workers) = pool::PoolCore::start(self.resolved())
            .map_err(|e| ThreadPoolBuildError(e.to_string()))?;
        Ok(ThreadPool { core, workers })
    }

    /// Install this configuration as the global pool.
    ///
    /// Unlike real rayon, later calls replace the earlier pool (its
    /// workers exit once their queue drains) instead of erroring, which
    /// keeps the historical shim semantics that CLI code relies on. Fails
    /// only when worker threads cannot be spawned.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        pool::set_global(self.resolved()).map_err(|e| ThreadPoolBuildError(e.to_string()))
    }
}

/// A real thread pool: `N` parked `std::thread` workers, each owning a
/// work-stealing deque (owner LIFO, randomized-victim steals FIFO). Work
/// `install`ed into it runs with this pool as the dispatch target for
/// every parallel iterator, [`join`], and [`scope`] call it makes.
#[derive(Debug)]
pub struct ThreadPool {
    core: Arc<pool::PoolCore>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Execute `op` inside the pool: `op` itself runs on the calling
    /// thread (the caller would otherwise just block), but every parallel
    /// region it opens dispatches to this pool's workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        pool::with_installed(Arc::clone(&self.core), op)
    }

    /// Create a scoped-task region on this pool (see [`scope`]).
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        self.core.scope(op)
    }

    /// The configured size of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.core.size()
    }

    /// Successful steals since this pool started — scheduler telemetry for
    /// the shim's own test suite (not part of the rayon API surface).
    #[cfg(test)]
    pub(crate) fn steal_count(&self) -> u64 {
        self.core.steal_count()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.core.shutdown();
        for w in self.workers.drain(..) {
            // A worker only terminates by running off its loop; a panic
            // here would mean a bug in the pool itself, not user code.
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn install_scopes_thread_count() {
        let outer = current_num_threads();
        assert!(outer >= 1);
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let inner = pool.install(current_num_threads);
        assert_eq!(inner, 5);
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn install_restores_on_nesting() {
        let p3 = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let p7 = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let (a, b, c) = p3.install(|| {
            let before = current_num_threads();
            let nested = p7.install(current_num_threads);
            (before, nested, current_num_threads())
        });
        assert_eq!((a, b, c), (3, 7, 3));
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn join_in_installed_pool_runs_both() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let (a, b) = pool.install(|| join(|| 21 * 2, || vec![1, 2, 3].len()));
        assert_eq!((a, b), (42, 3));
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn pool_scope_uses_distinct_worker_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let started = AtomicUsize::new(0);
        let ids = Mutex::new(HashSet::new());
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    started.fetch_add(1, Ordering::SeqCst);
                    // Rendezvous: hold each job on its thread until all
                    // four have started, so four distinct workers must
                    // exist. Bounded wait keeps the test robust.
                    let deadline = std::time::Instant::now() + crate::test_timeout(5);
                    while started.load(Ordering::SeqCst) < 4 && std::time::Instant::now() < deadline
                    {
                        std::thread::yield_now();
                    }
                    ids.lock().unwrap().insert(std::thread::current().id());
                });
            }
        });
        assert_eq!(ids.into_inner().unwrap().len(), 4, "expected 4 distinct worker threads");
    }

    #[test]
    fn concurrent_scopes_from_external_threads_share_one_pool() {
        // The serve daemon runs one scope per client connection, all on
        // the same pool, from plain std threads. Each scope must see its
        // own jobs complete and its own join barrier — pending counts and
        // panics from one scope must not leak into another.
        let pool = std::sync::Arc::new(ThreadPoolBuilder::new().num_threads(3).build().unwrap());
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                std::thread::spawn(move || {
                    let local = AtomicUsize::new(0);
                    pool.scope(|s| {
                        for k in 0..8 {
                            let local = &local;
                            let total = &total;
                            s.spawn(move |inner| {
                                local.fetch_add(t * 100 + k, Ordering::SeqCst);
                                total.fetch_add(1, Ordering::SeqCst);
                                // Nested spawn from inside a foreign
                                // scope's job still lands in this scope.
                                inner.spawn(move |_| {
                                    total.fetch_add(1, Ordering::SeqCst);
                                });
                            });
                        }
                    });
                    // The scope joined: all 8 increments of *this* scope
                    // (sum over k of t*100 + k) are visible right here.
                    local.load(Ordering::SeqCst)
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let expected: usize = (0..8).map(|k| t * 100 + k).sum();
            assert_eq!(h.join().unwrap(), expected, "scope {t} joined its own jobs");
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 8 * 2, "all jobs incl. nested ran");
    }

    #[test]
    fn nested_spawns_are_stolen_not_serialized() {
        // One job fans out 16 children onto its own deque and stays busy
        // until they all finish — so every child must run on a *thief*.
        // (The old shared-queue scheduler ran nested spawns inline; this
        // pins the scheduling upgrade at the public API.)
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let before = pool.steal_count();
        let done = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|s| {
                for _ in 0..16 {
                    s.spawn(|_| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
                let deadline = std::time::Instant::now() + crate::test_timeout(10);
                while done.load(Ordering::SeqCst) < 16 && std::time::Instant::now() < deadline {
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(done.load(Ordering::SeqCst), 16);
        assert!(pool.steal_count() >= before + 16, "children must be stolen");
    }

    #[test]
    fn current_thread_index_distinguishes_workers() {
        assert_eq!(current_thread_index(), None, "the test thread is not a pool worker");
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let indices = Mutex::new(HashSet::new());
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    indices.lock().unwrap().insert(current_thread_index());
                });
            }
        });
        let indices = indices.into_inner().unwrap();
        assert!(!indices.contains(&None), "jobs run on workers, which have indices");
        assert!(
            indices.iter().all(|i| i.is_some_and(|k| k < 3)),
            "indices stay below the pool size"
        );
    }

    #[test]
    fn dropping_pool_joins_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        drop(pool);
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn top_level_scope_without_pool_runs_inline() {
        // Regardless of ambient pool size, spawned work completes.
        let total = AtomicUsize::new(0);
        let total_ref = &total;
        scope(|s| {
            for k in 0..10 {
                s.spawn(move |_| {
                    total_ref.fetch_add(k, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 45);
    }
}
