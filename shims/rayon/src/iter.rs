//! Parallel iterators over splittable producers.
//!
//! The model is a simplified rayon: a [`Producer`] is a splittable
//! description of a data source (an index range, a slice, an adaptor over
//! another producer). Consuming methods split the producer into chunks
//! whose boundaries depend **only on the input length and the
//! `with_min_len`/`with_max_len` hints — never on the pool size** — fold
//! each chunk sequentially (on the current pool's workers), and combine
//! the per-chunk results in chunk order. This makes every reduction,
//! including floating-point sums, bitwise reproducible across pool sizes,
//! while per-element effects (`for_each`) run genuinely concurrently.
//!
//! Inputs no larger than one chunk run inline on the calling thread, so
//! small problems pay no dispatch overhead.

use crate::pool;

/// Elements per chunk before the hints are applied. Small enough to load
/// balance skewed work (e.g. Karp–Sipser chain walks), large enough that
/// per-job overhead (one allocation + one queue operation) is noise.
const DEFAULT_CHUNK: usize = 1024;

/// Upper bound on the number of chunks a single parallel call produces
/// (long inputs get proportionally longer chunks).
const MAX_CHUNKS: usize = 256;

/// A splittable, sendable description of a sequence — the engine behind
/// [`ParIter`]. `len_hint` is the chunking domain size (exact for indexed
/// sources, an upper bound downstream of `filter`/`flat_map`).
pub trait Producer: Sized + Send {
    /// Element type produced.
    type Item: Send;
    /// Sequential iterator a (sub-)producer decays into.
    type IntoSeq: Iterator<Item = Self::Item>;

    /// Size of the chunking domain (exact unless a length-changing adaptor
    /// such as `filter` sits in the pipeline, where it bounds from above).
    fn len_hint(&self) -> usize;

    /// Split into the first `mid` elements (of the chunking domain) and
    /// the rest. `mid` is at most `len_hint()`.
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Decay into a sequential iterator over this producer's elements.
    fn into_seq(self) -> Self::IntoSeq;

    /// Whether `len_hint` is the exact element count (true for ranges,
    /// slices, and length-preserving adaptors; false downstream of
    /// `filter`/`filter_map`/`flat_map`). Index-sensitive adaptors
    /// (`enumerate`, `zip`) require an exact base — real rayon encodes
    /// this in the type system (`IndexedParallelIterator`), the shim
    /// enforces it at construction time instead.
    fn is_exact(&self) -> bool {
        true
    }
}

/// A parallel iterator: a [`Producer`] plus chunk-size hints.
pub struct ParIter<P> {
    producer: P,
    min_len: usize,
    max_len: usize,
}

fn chunk_len(len: usize, min_len: usize, max_len: usize) -> usize {
    // `max_len` is a partitioning hint, honoured only down to the
    // `len / MAX_CHUNKS` floor: the bound on the number of chunks (and
    // with it the job-queue pressure of one parallel call) always wins.
    let floor = len.div_ceil(MAX_CHUNKS).max(1);
    let mut chunk = DEFAULT_CHUNK.max(min_len).max(floor);
    if max_len > 0 {
        chunk = chunk.min(max_len).max(floor);
    }
    chunk
}

/// Execute `fold` over every chunk of `par`, returning the per-chunk
/// results in deterministic chunk order.
fn drive<P, R, F>(par: ParIter<P>, fold: F) -> Vec<R>
where
    P: Producer,
    R: Send,
    F: Fn(P::IntoSeq) -> R + Sync,
{
    let ParIter { producer, min_len, max_len } = par;
    let len = producer.len_hint();
    let chunk = chunk_len(len, min_len, max_len);
    if len <= chunk {
        return vec![fold(producer.into_seq())];
    }
    let nchunks = len.div_ceil(chunk);
    let mut pieces = Vec::with_capacity(nchunks);
    let mut rest = producer;
    for _ in 0..nchunks - 1 {
        let (head, tail) = rest.split_at(chunk);
        pieces.push(head);
        rest = tail;
    }
    pieces.push(rest);
    match pool::dispatch_pool() {
        // No multi-thread pool to dispatch to: same chunks, run in order
        // on the caller (bitwise identical to the parallel execution).
        None => pieces.into_iter().map(|p| fold(p.into_seq())).collect(),
        Some(core) => {
            let mut slots: Vec<Option<R>> = Vec::new();
            slots.resize_with(nchunks, || None);
            let fold = &fold;
            core.scope(|s| {
                for (piece, slot) in pieces.into_iter().zip(slots.iter_mut()) {
                    s.spawn(move |_| {
                        *slot = Some(fold(piece.into_seq()));
                    });
                }
            });
            slots.into_iter().map(|r| r.expect("scope joined; every chunk ran")).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// Mirror of `rayon::iter::IntoParallelIterator`, implemented for integer
/// ranges, vectors, slices, and [`ParIter`] itself.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Producer backing the parallel iterator.
    type Prod: Producer<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Prod>;
}

impl<P: Producer> IntoParallelIterator for ParIter<P> {
    type Item = P::Item;
    type Prod = P;
    fn into_par_iter(self) -> ParIter<P> {
        self
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item: Send + 'data;
    /// Producer backing the parallel iterator.
    type Prod: Producer<Item = Self::Item>;
    /// Iterate the collection by reference.
    fn par_iter(&'data self) -> ParIter<Self::Prod>;
}

impl<'data, T: ?Sized + 'data> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoParallelIterator,
{
    type Item = <&'data T as IntoParallelIterator>::Item;
    type Prod = <&'data T as IntoParallelIterator>::Prod;
    fn par_iter(&'data self) -> ParIter<Self::Prod> {
        self.into_par_iter()
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator` (`.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type (a mutable reference).
    type Item: Send + 'data;
    /// Producer backing the parallel iterator.
    type Prod: Producer<Item = Self::Item>;
    /// Iterate the collection by mutable reference.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Prod>;
}

impl<'data, T: ?Sized + 'data> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoParallelIterator,
{
    type Item = <&'data mut T as IntoParallelIterator>::Item;
    type Prod = <&'data mut T as IntoParallelIterator>::Prod;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Prod> {
        self.into_par_iter()
    }
}

/// Mirror of `rayon::slice::ParallelSlice` (`.par_chunks(n)`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over non-overlapping sub-slices of length
    /// `chunk_size` (the last one may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter::from(ChunksProducer { slice: self, size: chunk_size })
    }
}

/// Mirror of `rayon::slice::ParallelSliceMut` (`.par_chunks_mut(n)`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable sub-slices of length
    /// `chunk_size` (the last one may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter::from(ChunksMutProducer { slice: self, size: chunk_size })
    }
}

impl<P: Producer> From<P> for ParIter<P> {
    fn from(producer: P) -> Self {
        ParIter { producer, min_len: 0, max_len: 0 }
    }
}

// ---------------------------------------------------------------------------
// Base producers: ranges, slices, vectors
// ---------------------------------------------------------------------------

/// Producer over an integer range.
pub struct RangeProducer<T> {
    range: std::ops::Range<T>,
}

macro_rules! range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type IntoSeq = std::ops::Range<$t>;
            fn len_hint(&self) -> usize {
                if self.range.end <= self.range.start {
                    0
                } else {
                    (self.range.end - self.range.start) as usize
                }
            }
            fn split_at(self, mid: usize) -> (Self, Self) {
                let mid = self.range.start + mid as $t;
                (
                    RangeProducer { range: self.range.start..mid },
                    RangeProducer { range: mid..self.range.end },
                )
            }
            fn into_seq(self) -> Self::IntoSeq {
                self.range
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Prod = RangeProducer<$t>;
            fn into_par_iter(self) -> ParIter<RangeProducer<$t>> {
                ParIter::from(RangeProducer { range: self })
            }
        }
    )*};
}

range_producer!(u32, u64, usize, i32, i64);

/// Producer over `&[T]`.
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoSeq = std::slice::Iter<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(mid);
        (SliceProducer { slice: a }, SliceProducer { slice: b })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.slice.iter()
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Prod = SliceProducer<'a, T>;
    fn into_par_iter(self) -> ParIter<SliceProducer<'a, T>> {
        ParIter::from(SliceProducer { slice: self })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Prod = SliceProducer<'a, T>;
    fn into_par_iter(self) -> ParIter<SliceProducer<'a, T>> {
        self.as_slice().into_par_iter()
    }
}

/// Producer over `&mut [T]`.
pub struct SliceMutProducer<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoSeq = std::slice::IterMut<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(mid);
        (SliceMutProducer { slice: a }, SliceMutProducer { slice: b })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.slice.iter_mut()
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Prod = SliceMutProducer<'a, T>;
    fn into_par_iter(self) -> ParIter<SliceMutProducer<'a, T>> {
        ParIter::from(SliceMutProducer { slice: self })
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Prod = SliceMutProducer<'a, T>;
    fn into_par_iter(self) -> ParIter<SliceMutProducer<'a, T>> {
        self.as_mut_slice().into_par_iter()
    }
}

/// Producer over an owned `Vec<T>` (splitting allocates the tail half).
pub struct VecProducer<T> {
    vec: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoSeq = std::vec::IntoIter<T>;
    fn len_hint(&self) -> usize {
        self.vec.len()
    }
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.vec.split_off(mid);
        (self, VecProducer { vec: tail })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.vec.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Prod = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        ParIter::from(VecProducer { vec: self })
    }
}

/// Producer behind [`ParallelSlice::par_chunks`].
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoSeq = std::slice::Chunks<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(at);
        (ChunksProducer { slice: a, size: self.size }, ChunksProducer { slice: b, size: self.size })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.slice.chunks(self.size)
    }
}

/// Producer behind [`ParallelSliceMut::par_chunks_mut`].
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoSeq = std::slice::ChunksMut<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(at);
        (
            ChunksMutProducer { slice: a, size: self.size },
            ChunksMutProducer { slice: b, size: self.size },
        )
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.slice.chunks_mut(self.size)
    }
}

// ---------------------------------------------------------------------------
// Adaptor producers
// ---------------------------------------------------------------------------

/// Producer adaptor behind [`ParIter::map`].
pub struct MapProducer<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
    R: Send,
{
    type Item = R;
    type IntoSeq = std::iter::Map<P::IntoSeq, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (MapProducer { base: a, f: self.f.clone() }, MapProducer { base: b, f: self.f })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.base.into_seq().map(self.f)
    }
    fn is_exact(&self) -> bool {
        self.base.is_exact()
    }
}

/// Producer adaptor behind [`ParIter::filter`].
pub struct FilterProducer<P, F> {
    base: P,
    pred: F,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Clone + Send + Sync,
{
    type Item = P::Item;
    type IntoSeq = std::iter::Filter<P::IntoSeq, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            FilterProducer { base: a, pred: self.pred.clone() },
            FilterProducer { base: b, pred: self.pred },
        )
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.base.into_seq().filter(self.pred)
    }
    fn is_exact(&self) -> bool {
        false
    }
}

/// Producer adaptor behind [`ParIter::filter_map`].
pub struct FilterMapProducer<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> Producer for FilterMapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> Option<R> + Clone + Send + Sync,
    R: Send,
{
    type Item = R;
    type IntoSeq = std::iter::FilterMap<P::IntoSeq, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (FilterMapProducer { base: a, f: self.f.clone() }, FilterMapProducer { base: b, f: self.f })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.base.into_seq().filter_map(self.f)
    }
    fn is_exact(&self) -> bool {
        false
    }
}

/// Producer adaptor behind [`ParIter::flat_map`].
pub struct FlatMapProducer<P, F> {
    base: P,
    f: F,
}

impl<P, F, U> Producer for FlatMapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> U + Clone + Send + Sync,
    U: IntoIterator,
    U::Item: Send,
{
    type Item = U::Item;
    type IntoSeq = std::iter::FlatMap<P::IntoSeq, U, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (FlatMapProducer { base: a, f: self.f.clone() }, FlatMapProducer { base: b, f: self.f })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.base.into_seq().flat_map(self.f)
    }
    fn is_exact(&self) -> bool {
        false
    }
}

/// Producer adaptor behind [`ParIter::enumerate`].
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoSeq = std::iter::Zip<std::ops::RangeFrom<usize>, P::IntoSeq>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            EnumerateProducer { base: a, offset: self.offset },
            EnumerateProducer { base: b, offset: self.offset + mid },
        )
    }
    fn into_seq(self) -> Self::IntoSeq {
        (self.offset..).zip(self.base.into_seq())
    }
    fn is_exact(&self) -> bool {
        self.base.is_exact()
    }
}

/// Producer adaptor behind [`ParIter::zip`].
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoSeq = std::iter::Zip<A::IntoSeq, B::IntoSeq>;
    fn len_hint(&self) -> usize {
        self.a.len_hint().min(self.b.len_hint())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(mid);
        let (b1, b2) = self.b.split_at(mid);
        (ZipProducer { a: a1, b: b1 }, ZipProducer { a: a2, b: b2 })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.a.into_seq().zip(self.b.into_seq())
    }
    fn is_exact(&self) -> bool {
        self.a.is_exact() && self.b.is_exact()
    }
}

/// Producer adaptor behind [`ParIter::chain`].
pub struct ChainProducer<A, B> {
    a: A,
    b: B,
}

impl<A, B> Producer for ChainProducer<A, B>
where
    A: Producer,
    B: Producer<Item = A::Item>,
{
    type Item = A::Item;
    type IntoSeq = std::iter::Chain<A::IntoSeq, B::IntoSeq>;
    fn len_hint(&self) -> usize {
        self.a.len_hint() + self.b.len_hint()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let alen = self.a.len_hint();
        if mid <= alen {
            let (a1, a2) = self.a.split_at(mid);
            let (b1, b2) = self.b.split_at(0);
            (ChainProducer { a: a1, b: b1 }, ChainProducer { a: a2, b: b2 })
        } else {
            let (a1, a2) = self.a.split_at(alen);
            let (b1, b2) = self.b.split_at(mid - alen);
            (ChainProducer { a: a1, b: b1 }, ChainProducer { a: a2, b: b2 })
        }
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.a.into_seq().chain(self.b.into_seq())
    }
    fn is_exact(&self) -> bool {
        self.a.is_exact() && self.b.is_exact()
    }
}

/// Producer adaptor behind [`ParIter::copied`].
pub struct CopiedProducer<P> {
    base: P,
}

impl<'a, T, P> Producer for CopiedProducer<P>
where
    P: Producer<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    type Item = T;
    type IntoSeq = std::iter::Copied<P::IntoSeq>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (CopiedProducer { base: a }, CopiedProducer { base: b })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.base.into_seq().copied()
    }
    fn is_exact(&self) -> bool {
        self.base.is_exact()
    }
}

/// Producer adaptor behind [`ParIter::cloned`].
pub struct ClonedProducer<P> {
    base: P,
}

impl<'a, T, P> Producer for ClonedProducer<P>
where
    P: Producer<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
    type Item = T;
    type IntoSeq = std::iter::Cloned<P::IntoSeq>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (ClonedProducer { base: a }, ClonedProducer { base: b })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.base.into_seq().cloned()
    }
    fn is_exact(&self) -> bool {
        self.base.is_exact()
    }
}

// ---------------------------------------------------------------------------
// Combinators and consumers
// ---------------------------------------------------------------------------

impl<P: Producer> ParIter<P> {
    /// Map each element.
    pub fn map<F, R>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        F: Fn(P::Item) -> R + Clone + Send + Sync,
        R: Send,
    {
        ParIter {
            producer: MapProducer { base: self.producer, f },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Keep elements satisfying the predicate.
    pub fn filter<F>(self, pred: F) -> ParIter<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Clone + Send + Sync,
    {
        ParIter {
            producer: FilterProducer { base: self.producer, pred },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Filter and map in one pass.
    pub fn filter_map<F, R>(self, f: F) -> ParIter<FilterMapProducer<P, F>>
    where
        F: Fn(P::Item) -> Option<R> + Clone + Send + Sync,
        R: Send,
    {
        ParIter {
            producer: FilterMapProducer { base: self.producer, f },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Map each element to an iterator and flatten.
    pub fn flat_map<F, U>(self, f: F) -> ParIter<FlatMapProducer<P, F>>
    where
        F: Fn(P::Item) -> U + Clone + Send + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        ParIter {
            producer: FlatMapProducer { base: self.producer, f },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Pair each element with its index.
    ///
    /// # Panics
    /// If a length-changing adaptor (`filter`, `filter_map`, `flat_map`)
    /// sits upstream: chunked index assignment would be wrong there. Real
    /// rayon rejects the same composition at compile time
    /// (`enumerate` needs an `IndexedParallelIterator`).
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        assert!(
            self.producer.is_exact(),
            "enumerate() requires an indexed parallel iterator \
             (no filter/filter_map/flat_map upstream), as in real rayon"
        );
        ParIter {
            producer: EnumerateProducer { base: self.producer, offset: 0 },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Zip with anything convertible to a parallel iterator.
    ///
    /// # Panics
    /// If either side has a length-changing adaptor (`filter`,
    /// `filter_map`, `flat_map`) upstream: chunked pairing would be wrong
    /// there. Real rayon rejects the same composition at compile time
    /// (`zip` needs `IndexedParallelIterator`s).
    pub fn zip<Z>(self, other: Z) -> ParIter<ZipProducer<P, Z::Prod>>
    where
        Z: IntoParallelIterator,
    {
        let b = other.into_par_iter().producer;
        assert!(
            self.producer.is_exact() && b.is_exact(),
            "zip() requires indexed parallel iterators on both sides \
             (no filter/filter_map/flat_map upstream), as in real rayon"
        );
        ParIter {
            producer: ZipProducer { a: self.producer, b },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Concatenate with another iterator of the same item type.
    pub fn chain<C>(self, other: C) -> ParIter<ChainProducer<P, C::Prod>>
    where
        C: IntoParallelIterator<Item = P::Item>,
    {
        ParIter {
            producer: ChainProducer { a: self.producer, b: other.into_par_iter().producer },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Copy `&T` items into `T` items.
    pub fn copied<'a, T>(self) -> ParIter<CopiedProducer<P>>
    where
        P: Producer<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        ParIter {
            producer: CopiedProducer { base: self.producer },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Clone `&T` items into `T` items.
    pub fn cloned<'a, T>(self) -> ParIter<ClonedProducer<P>>
    where
        P: Producer<Item = &'a T>,
        T: Clone + Send + Sync + 'a,
    {
        ParIter {
            producer: ClonedProducer { base: self.producer },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Require at least `min` elements per chunk (affects only how work is
    /// partitioned; results are unchanged).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min;
        self
    }

    /// Allow at most `max` elements per chunk (affects only how work is
    /// partitioned; results are unchanged).
    pub fn with_max_len(mut self, max: usize) -> Self {
        self.max_len = max;
        self
    }

    /// Consume, applying `f` to every element (chunks run concurrently on
    /// the current pool).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        drive(self, |it| it.for_each(&f));
    }

    /// Sum all elements. Partial sums are combined in chunk order, so the
    /// result is identical for every pool size (but may differ from a
    /// single sequential fold on non-associative types such as floats).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        drive(self, |it| it.sum::<S>()).into_iter().sum()
    }

    /// Count the elements.
    pub fn count(self) -> usize {
        drive(self, |it| it.count()).into_iter().sum()
    }

    /// Rayon's two-argument reduce: fold every chunk from `identity()`,
    /// then combine the per-chunk results in chunk order with `op`.
    pub fn reduce<OP, ID>(self, identity: ID, op: OP) -> P::Item
    where
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
        ID: Fn() -> P::Item + Send + Sync,
    {
        let partials = drive(self, |it| it.fold(identity(), &op));
        partials.into_iter().fold(identity(), &op)
    }

    /// Minimum element (requires `Ord`).
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        drive(self, |it| it.min()).into_iter().flatten().min()
    }

    /// Maximum element (requires `Ord`).
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        drive(self, |it| it.max()).into_iter().flatten().max()
    }

    /// Do all elements satisfy the predicate? (Evaluates every chunk; no
    /// early exit across chunks.)
    pub fn all<F>(self, pred: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        drive(self, |mut it| it.all(&pred)).into_iter().all(|b| b)
    }

    /// Does any element satisfy the predicate?
    pub fn any<F>(self, pred: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        drive(self, |mut it| it.any(&pred)).into_iter().any(|b| b)
    }

    /// Collect into any `FromIterator` collection, preserving element
    /// order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<P::Item>,
    {
        drive(self, |it| it.collect::<Vec<_>>()).into_iter().flatten().collect()
    }

    /// Collect into a caller-provided `Vec`, replacing its contents while
    /// reusing its allocation.
    pub fn collect_into_vec(self, target: &mut Vec<P::Item>) {
        target.clear();
        let len = self.producer.len_hint();
        if len <= chunk_len(len, self.min_len, self.max_len) {
            // Inline path: no intermediate chunk vectors at all.
            target.extend(self.producer.into_seq());
            return;
        }
        for mut chunk in drive(self, |it| it.collect::<Vec<_>>()) {
            target.append(&mut chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPoolBuilder;

    #[test]
    fn range_map_sum() {
        let s: u64 = (0u64..100).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 9900);
    }

    #[test]
    fn slice_par_iter_and_mut() {
        let mut v = vec![1i64, 2, 3];
        let total: i64 = v.par_iter().copied().sum();
        assert_eq!(total, 6);
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn reduce_with_identity() {
        let m = (1..6i32).into_par_iter().map(|x| x as f64).reduce(|| f64::INFINITY, f64::min);
        assert_eq!(m, 1.0);
        let empty = (0..0).into_par_iter().map(|x| x as f64).reduce(|| 0.5, f64::max);
        assert_eq!(empty, 0.5);
    }

    #[test]
    fn zip_enumerate_collect_into_vec() {
        let a = vec![1u32, 2, 3];
        let b = vec![10u32, 20, 30];
        let mut out = Vec::new();
        a.par_iter()
            .zip(&b)
            .enumerate()
            .map(|(k, (x, y))| k as u32 + x + y)
            .collect_into_vec(&mut out);
        assert_eq!(out, vec![11, 23, 35]);
    }

    #[test]
    fn all_any_filter() {
        assert!((0..10).into_par_iter().all(|x| x < 10));
        assert!((0..10).into_par_iter().any(|x| x == 7));
        let odd: Vec<i32> = (0..10).into_par_iter().filter(|x| x % 2 == 1).collect();
        assert_eq!(odd, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn large_for_each_runs_on_pool_and_hits_every_index() {
        use std::sync::atomic::{AtomicU8, Ordering};
        let n = 100_000usize;
        let hits: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..n).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn float_sum_is_identical_across_pool_sizes() {
        let xs: Vec<f64> = (0..50_000).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let mut results = Vec::new();
        for t in [1usize, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(t).build().unwrap();
            results.push(pool.install(|| xs.par_iter().sum::<f64>()).to_bits());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn collect_preserves_order_on_large_inputs() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let v: Vec<usize> = pool.install(|| (0..30_000usize).into_par_iter().map(|x| x).collect());
        assert_eq!(v.len(), 30_000);
        assert!(v.iter().enumerate().all(|(k, &x)| k == x));
    }

    #[test]
    fn collect_into_vec_reuses_allocation() {
        let mut out: Vec<u32> = Vec::new();
        (0..20_000u32).into_par_iter().map(|x| x + 1).collect_into_vec(&mut out);
        let ptr = out.as_ptr();
        let cap = out.capacity();
        (0..20_000u32).into_par_iter().map(|x| x + 2).collect_into_vec(&mut out);
        assert_eq!(out[0], 2);
        assert_eq!(out.as_ptr(), ptr, "target allocation must be reused");
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn par_chunks_and_chunks_mut() {
        let v: Vec<u32> = (0..10_000).collect();
        let per_chunk: Vec<u64> =
            v.par_chunks(100).map(|c| c.iter().map(|&x| x as u64).sum()).collect();
        assert_eq!(per_chunk.len(), 100);
        assert_eq!(per_chunk.iter().sum::<u64>(), (0..10_000u64).sum());
        let mut w = vec![0u8; 4096];
        w.par_chunks_mut(7).for_each(|c| c.fill(1));
        assert!(w.iter().all(|&x| x == 1));
    }

    #[test]
    fn chain_and_flat_map() {
        let a = vec![1u32, 2];
        let total: u32 =
            a.par_iter().copied().chain((3u32..5).into_par_iter()).map(|x| x * 10).sum();
        assert_eq!(total, 100);
        let doubled: Vec<u32> = (0u32..4).into_par_iter().flat_map(|x| vec![x, x]).collect();
        assert_eq!(doubled, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn min_max_filter_map() {
        assert_eq!((5u32..50).into_par_iter().min(), Some(5));
        assert_eq!((5u32..50).into_par_iter().max(), Some(49));
        let evens: Vec<u32> =
            (0u32..10).into_par_iter().filter_map(|x| (x % 2 == 0).then_some(x)).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "enumerate() requires an indexed parallel iterator")]
    fn enumerate_after_filter_is_rejected() {
        // Real rayon makes this unrepresentable (filter is unindexed);
        // the shim must refuse rather than hand out wrong indices.
        let _ = (0u32..5000).into_par_iter().filter(|x| x % 2 == 0).enumerate();
    }

    #[test]
    #[should_panic(expected = "zip() requires indexed parallel iterators")]
    fn zip_after_filter_is_rejected() {
        let _ = (0u32..5000).into_par_iter().filter(|x| x % 2 == 0).zip(0u32..2500);
    }

    #[test]
    fn with_max_len_cannot_exceed_chunk_bound() {
        // The MAX_CHUNKS invariant outranks the hint: a tiny max_len on a
        // huge input must not explode into millions of jobs.
        let chunk = chunk_len(10_000_000, 0, 16);
        assert!(10_000_000usize.div_ceil(chunk) <= MAX_CHUNKS);
        // On small inputs the hint is honoured exactly.
        assert_eq!(chunk_len(2_000, 0, 16), 16);
        // And results stay correct either way.
        let s: u64 = (0u64..100_000).into_par_iter().with_max_len(16).sum();
        assert_eq!(s, (0u64..100_000).sum());
    }

    #[test]
    fn with_min_len_changes_partitioning_not_results() {
        let base: u64 = (0u64..10_000).into_par_iter().sum();
        let hinted: u64 = (0u64..10_000).into_par_iter().with_min_len(10_000).sum();
        // min_len forces a single chunk here; the sum of integers is
        // partition-independent either way.
        assert_eq!(base, hinted);
    }
}
