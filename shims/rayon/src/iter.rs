//! Sequential stand-ins for rayon's parallel iterator traits.
//!
//! [`ParIter`] wraps an ordinary [`Iterator`] and exposes (as *inherent*
//! methods, so no trait import is needed beyond the entry points) the
//! rayon-flavoured combinators the workspace uses: `map`, `filter`,
//! `enumerate`, `zip`, `for_each`, `sum`, rayon's two-argument `reduce`,
//! `collect`, `collect_into_vec`, and friends. Execution order is the
//! sequential order, which is a legal schedule for any correct rayon
//! program.

/// Sequential "parallel" iterator: a transparent wrapper over `I`.
#[derive(Debug, Clone)]
pub struct ParIter<I> {
    inner: I,
}

// Delegating `Iterator` lets a `ParIter` be passed wherever an
// `IntoParallelIterator` is expected (e.g. as the argument of `zip`).
// Inherent methods below shadow the `Iterator` ones, so rayon's signatures
// (two-argument `reduce`, …) win at call sites.
impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.inner.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Mirror of `rayon::iter::IntoParallelIterator`, blanket-implemented for
/// everything that is [`IntoIterator`] (ranges, `Vec`, slices, …).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = T::IntoIter;
    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter { inner: self.into_iter() }
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item: 'data;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate the collection by reference.
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: ?Sized + 'data> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
{
    type Item = <&'data T as IntoIterator>::Item;
    type Iter = <&'data T as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter { inner: self.into_iter() }
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator` (`.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type (a mutable reference).
    type Item: 'data;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate the collection by mutable reference.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
}

impl<'data, T: ?Sized + 'data> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoIterator,
{
    type Item = <&'data mut T as IntoIterator>::Item;
    type Iter = <&'data mut T as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
        ParIter { inner: self.into_iter() }
    }
}

impl<I: Iterator> ParIter<I> {
    /// Map each element.
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter { inner: self.inner.map(f) }
    }

    /// Keep elements satisfying the predicate.
    pub fn filter<P>(self, p: P) -> ParIter<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        ParIter { inner: self.inner.filter(p) }
    }

    /// Filter and map in one pass.
    pub fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        ParIter { inner: self.inner.filter_map(f) }
    }

    /// Map each element to an iterator and flatten.
    pub fn flat_map<F, U>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        F: FnMut(I::Item) -> U,
        U: IntoIterator,
    {
        ParIter { inner: self.inner.flat_map(f) }
    }

    /// Pair each element with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter { inner: self.inner.enumerate() }
    }

    /// Zip with anything convertible to a parallel iterator.
    pub fn zip<Z>(self, other: Z) -> ParIter<std::iter::Zip<I, <Z as IntoParallelIterator>::Iter>>
    where
        Z: IntoParallelIterator,
    {
        ParIter { inner: self.inner.zip(other.into_par_iter().inner) }
    }

    /// Concatenate with another iterator of the same item type.
    pub fn chain<C>(
        self,
        other: C,
    ) -> ParIter<std::iter::Chain<I, <C as IntoParallelIterator>::Iter>>
    where
        C: IntoParallelIterator<Item = I::Item>,
    {
        ParIter { inner: self.inner.chain(other.into_par_iter().inner) }
    }

    /// Copy `&T` items into `T` items.
    pub fn copied<'a, T>(self) -> ParIter<std::iter::Copied<I>>
    where
        I: Iterator<Item = &'a T>,
        T: 'a + Copy,
    {
        ParIter { inner: self.inner.copied() }
    }

    /// Clone `&T` items into `T` items.
    pub fn cloned<'a, T>(self) -> ParIter<std::iter::Cloned<I>>
    where
        I: Iterator<Item = &'a T>,
        T: 'a + Clone,
    {
        ParIter { inner: self.inner.cloned() }
    }

    /// Hint for rayon's splitter; a no-op here.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Hint for rayon's splitter; a no-op here.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Consume, applying `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f)
    }

    /// Sum all elements.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    /// Count the elements.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// Rayon's two-argument reduce: fold from `identity()` with `op`.
    pub fn reduce<OP, ID>(self, identity: ID, op: OP) -> I::Item
    where
        OP: FnMut(I::Item, I::Item) -> I::Item,
        ID: FnOnce() -> I::Item,
    {
        self.inner.fold(identity(), {
            let mut op = op;
            move |a, b| op(a, b)
        })
    }

    /// Minimum element (requires `Ord`).
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.min()
    }

    /// Maximum element (requires `Ord`).
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.max()
    }

    /// Do all elements satisfy the predicate?
    pub fn all<P>(self, p: P) -> bool
    where
        P: FnMut(I::Item) -> bool,
    {
        let mut inner = self.inner;
        let p = p;
        inner.all(p)
    }

    /// Does any element satisfy the predicate?
    pub fn any<P>(self, p: P) -> bool
    where
        P: FnMut(I::Item) -> bool,
    {
        let mut inner = self.inner;
        let p = p;
        inner.any(p)
    }

    /// Collect into any `FromIterator` collection.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }

    /// Collect into a caller-provided `Vec`, replacing its contents.
    pub fn collect_into_vec(self, target: &mut Vec<I::Item>) {
        target.clear();
        target.extend(self.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_map_sum() {
        let s: u64 = (0u64..100).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 9900);
    }

    #[test]
    fn slice_par_iter_and_mut() {
        let mut v = vec![1i64, 2, 3];
        let total: i64 = v.par_iter().copied().sum();
        assert_eq!(total, 6);
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn reduce_with_identity() {
        let m = (1..=5i32).into_par_iter().map(|x| x as f64).reduce(|| f64::INFINITY, f64::min);
        assert_eq!(m, 1.0);
        let empty = (0..0).into_par_iter().map(|x| x as f64).reduce(|| 0.5, f64::max);
        assert_eq!(empty, 0.5);
    }

    #[test]
    fn zip_enumerate_collect_into_vec() {
        let a = vec![1u32, 2, 3];
        let b = vec![10u32, 20, 30];
        let mut out = Vec::new();
        a.par_iter()
            .zip(&b)
            .enumerate()
            .map(|(k, (x, y))| k as u32 + x + y)
            .collect_into_vec(&mut out);
        assert_eq!(out, vec![11, 23, 35]);
    }

    #[test]
    fn all_any_filter() {
        assert!((0..10).into_par_iter().all(|x| x < 10));
        assert!((0..10).into_par_iter().any(|x| x == 7));
        let odd: Vec<i32> = (0..10).into_par_iter().filter(|x| x % 2 == 1).collect();
        assert_eq!(odd, vec![1, 3, 5, 7, 9]);
    }
}
