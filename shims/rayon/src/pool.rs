//! The execution core: OS worker threads, a shared job queue, and scoped
//! task regions.
//!
//! This module is the only place in the shim that uses `unsafe`: a scoped
//! job borrows stack data of the thread that called [`PoolCore::scope`],
//! and its lifetime is erased so it can travel through the `'static` job
//! queue. Safety rests on the scope discipline — `scope` does not return
//! until its completion latch reports every spawned job finished, so the
//! borrowed data is live for the whole execution of every job (the same
//! argument `std::thread::scope` makes).
//!
//! Design (the "static partitioning, dynamic draining" model):
//!
//! - A pool of size `N` owns `N` OS worker threads parked on a condition
//!   variable. Parallel regions enqueue one job per deterministic chunk;
//!   workers drain the queue. Chunk *boundaries* never depend on the pool
//!   size (see [`crate::iter`]), only the assignment of chunks to threads
//!   does — which is what makes reductions bitwise reproducible across
//!   pool sizes.
//! - A region is a [`Scope`]: spawn borrows, then the creating thread
//!   blocks on the scope's latch. Panics inside jobs are caught, carried
//!   across the thread boundary, and resumed on the scoping thread.
//! - Nested regions started *from a worker thread* run inline on that
//!   worker (no re-enqueueing), which makes nesting deadlock-free even on
//!   a pool of size 1.

#![allow(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased, lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send>;

/// Shared state of one pool: the job queue its workers drain.
pub(crate) struct PoolCore {
    size: usize,
    queue: Mutex<QueueState>,
    work_available: Condvar,
}

impl std::fmt::Debug for PoolCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolCore").field("size", &self.size).finish_non_exhaustive()
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

thread_local! {
    /// Non-zero on pool worker threads: the size of the pool the worker
    /// belongs to. Parallel regions started on a worker run inline.
    static WORKER_POOL_SIZE: Cell<usize> = const { Cell::new(0) };
    /// The pool installed by [`crate::ThreadPool::install`] on this thread.
    static INSTALLED: RefCell<Vec<Arc<PoolCore>>> = const { RefCell::new(Vec::new()) };
}

/// True on a pool worker thread (parallel regions must run inline there).
pub(crate) fn in_worker() -> bool {
    WORKER_POOL_SIZE.with(Cell::get) != 0
}

/// Pool size seen by `current_num_threads` on a worker thread (0 if the
/// current thread is not a worker).
pub(crate) fn worker_pool_size() -> usize {
    WORKER_POOL_SIZE.with(Cell::get)
}

/// The pool a parallel region on this thread should execute in:
/// the innermost installed pool, else the global pool. `None` on worker
/// threads (nested regions run inline) and when the resolved pool has a
/// single thread (dispatch would be pure overhead).
pub(crate) fn dispatch_pool() -> Option<Arc<PoolCore>> {
    if in_worker() {
        return None;
    }
    let installed = INSTALLED.with(|stack| stack.borrow().last().cloned());
    let core = match installed {
        Some(core) => core,
        None => global_core()?,
    };
    (core.size > 1).then_some(core)
}

/// Size of the pool `dispatch_pool` would resolve to, counting worker
/// threads even when dispatch itself would be declined.
pub(crate) fn ambient_pool_size() -> usize {
    let installed = INSTALLED.with(|stack| stack.borrow().last().map(|c| c.size));
    installed.unwrap_or_else(global_size)
}

/// Push `core` as the innermost installed pool for the duration of `op`.
pub(crate) fn with_installed<R>(core: Arc<PoolCore>, op: impl FnOnce() -> R) -> R {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            INSTALLED.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    INSTALLED.with(|stack| stack.borrow_mut().push(core));
    let _guard = PopOnDrop;
    op()
}

/// The machine default: `RAYON_NUM_THREADS` if set to a positive integer
/// (the same override the real rayon honours), else the available
/// parallelism.
pub(crate) fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The global pool, built lazily. `None` when no pool was ever requested
/// and the default size is 1 — building a one-worker pool would never be
/// dispatched to anyway.
fn global_core() -> Option<Arc<PoolCore>> {
    let slot = global_slot().lock().expect("global pool lock poisoned");
    if let Some(core) = slot.as_ref() {
        return Some(Arc::clone(core));
    }
    drop(slot);
    if default_threads() <= 1 {
        return None;
    }
    let mut slot = global_slot().lock().expect("global pool lock poisoned");
    if slot.is_none() {
        // Failing to spawn the lazy global pool degrades gracefully to
        // inline execution instead of aborting the process.
        if let Ok((core, _workers)) = PoolCore::start(default_threads()) {
            *slot = Some(core);
        } else {
            return None;
        }
    }
    slot.clone()
}

/// Size the global pool would have (without necessarily building it).
pub(crate) fn global_size() -> usize {
    let slot = global_slot().lock().expect("global pool lock poisoned");
    slot.as_ref().map_or_else(default_threads, |c| c.size)
}

/// Replace the global pool with a fresh one of `size` threads. The old
/// pool's workers are told to exit once their queue drains.
pub(crate) fn set_global(size: usize) -> std::io::Result<()> {
    let (core, _workers) = PoolCore::start(size)?;
    let mut slot = global_slot().lock().expect("global pool lock poisoned");
    if let Some(old) = slot.replace(core) {
        old.shutdown();
    }
    Ok(())
}

fn global_slot() -> &'static Mutex<Option<Arc<PoolCore>>> {
    static GLOBAL: OnceLock<Mutex<Option<Arc<PoolCore>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

impl PoolCore {
    /// Build a core and spawn its `size` workers. The handles are returned
    /// so owned pools ([`crate::ThreadPool`]) can join them on drop; the
    /// global pool drops them (workers exit on shutdown regardless).
    ///
    /// On worker-spawn failure (thread exhaustion), already-spawned
    /// workers are shut down and joined before the error is returned, so
    /// a failed build leaks nothing.
    pub(crate) fn start(size: usize) -> std::io::Result<(Arc<Self>, Vec<JoinHandle<()>>)> {
        let size = size.max(1);
        let core = Arc::new(PoolCore {
            size,
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            work_available: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(size);
        for k in 0..size {
            let worker_core = Arc::clone(&core);
            match std::thread::Builder::new()
                .name(format!("rayon-shim-{k}"))
                .spawn(move || worker_loop(worker_core))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    core.shutdown();
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok((core, workers))
    }

    /// Number of worker threads.
    pub(crate) fn size(&self) -> usize {
        self.size
    }

    fn push(&self, job: Job) {
        let mut q = self.queue.lock().expect("pool queue lock poisoned");
        q.jobs.push_back(job);
        drop(q);
        self.work_available.notify_one();
    }

    /// Tell workers to exit once the queue is drained.
    pub(crate) fn shutdown(&self) {
        let mut q = self.queue.lock().expect("pool queue lock poisoned");
        q.shutdown = true;
        drop(q);
        self.work_available.notify_all();
    }

    /// Run `op` with a [`Scope`] whose spawned jobs execute on this pool,
    /// then block until every job has finished. Panics from jobs are
    /// resumed here, after all jobs have completed (so borrowed data is
    /// never freed under a running job, even on unwind).
    pub(crate) fn scope<'scope, OP, R>(self: &Arc<Self>, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            core: Some(Arc::clone(self)),
            state: Arc::new(ScopeState {
                sync: Mutex::new(ScopeSync { pending: 0, panic: None }),
                done: Condvar::new(),
            }),
            _borrow: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        scope.wait();
        let job_panic = {
            let mut sync = scope.state.sync.lock().expect("scope lock poisoned");
            sync.panic.take()
        };
        match result {
            Ok(r) => {
                if let Some(p) = job_panic {
                    resume_unwind(p);
                }
                r
            }
            Err(p) => resume_unwind(p),
        }
    }
}

fn worker_loop(core: Arc<PoolCore>) {
    WORKER_POOL_SIZE.with(|c| c.set(core.size));
    loop {
        let job = {
            let mut q = core.queue.lock().expect("pool queue lock poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = core.work_available.wait(q).expect("pool queue lock poisoned");
            }
        };
        match job {
            // Jobs are panic-wrapped at spawn time, so this call never
            // unwinds into the loop.
            Some(job) => job(),
            None => return,
        }
    }
}

/// Completion latch + first-panic slot shared by a scope and its jobs.
struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

struct ScopeSync {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Run `op` with a scope whose spawns execute inline on the calling
/// thread — the degenerate region used when no multi-thread pool is
/// available for dispatch.
pub(crate) fn inline_scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        core: None,
        state: Arc::new(ScopeState {
            sync: Mutex::new(ScopeSync { pending: 0, panic: None }),
            done: Condvar::new(),
        }),
        _borrow: PhantomData,
    };
    op(&scope)
}

/// A scoped-task region on a pool: see [`crate::ThreadPool::scope`] and
/// [`crate::scope`]. Jobs spawned here may borrow data created before the
/// scope; the scope joins them all before returning.
pub struct Scope<'scope> {
    /// `None` for inline regions: spawns run eagerly on the caller.
    core: Option<Arc<PoolCore>>,
    state: Arc<ScopeState>,
    /// Makes `'scope` invariant, so borrows can't be shortened behind the
    /// region's back.
    _borrow: PhantomData<&'scope mut &'scope ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pool_size", &self.core.as_ref().map_or(1, |c| c.size))
            .finish()
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` into the pool. The closure receives the scope (as in
    /// rayon), so jobs can spawn further jobs. When called from a pool
    /// worker thread — or on an inline region — the body runs inline,
    /// keeping nesting deadlock-free.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let Some(core) = &self.core else {
            body(self);
            return;
        };
        if in_worker() {
            body(self);
            return;
        }
        {
            let mut sync = self.state.sync.lock().expect("scope lock poisoned");
            sync.pending += 1;
        }
        let handle = Scope {
            core: Some(Arc::clone(core)),
            state: Arc::clone(&self.state),
            _borrow: PhantomData,
        };
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| body(&handle)));
            let mut sync = state.sync.lock().expect("scope lock poisoned");
            if let Err(payload) = result {
                sync.panic.get_or_insert(payload);
            }
            sync.pending -= 1;
            if sync.pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: `PoolCore::scope` blocks on the latch until `pending`
        // returns to zero, i.e. until this job (and any job it spawns)
        // has run to completion, before any data borrowed for `'scope`
        // can be dropped — including when the scope body itself panics.
        // The erased box therefore never outlives its borrows.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        core.push(job);
    }

    /// Block until every spawned job has completed.
    fn wait(&self) {
        let mut sync = self.state.sync.lock().expect("scope lock poisoned");
        while sync.pending > 0 {
            sync = self.state.done.wait(sync).expect("scope lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_jobs_on_worker_threads() {
        let (core, workers) = PoolCore::start(3).unwrap();
        let caller = std::thread::current().id();
        let ids = Mutex::new(Vec::new());
        core.scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    ids.lock().unwrap().push(std::thread::current().id());
                });
            }
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids.len(), 8);
        assert!(ids.iter().all(|&id| id != caller), "jobs must run off the calling thread");
        core.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn scope_joins_before_returning() {
        let (core, workers) = PoolCore::start(2).unwrap();
        let counter = AtomicUsize::new(0);
        core.scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        core.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn nested_spawn_from_job_completes() {
        let (core, workers) = PoolCore::start(1).unwrap();
        let hits = AtomicUsize::new(0);
        core.scope(|s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::Relaxed);
                // Runs inline on the worker: must not deadlock on size 1.
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        core.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn job_panic_propagates_to_scope() {
        let (core, workers) = PoolCore::start(2).unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            core.scope(|s| {
                s.spawn(|_| panic!("boom in job"));
            });
        }));
        assert!(result.is_err(), "scope must re-raise a job panic");
        // The pool survives a panicking job.
        let ok = AtomicUsize::new(0);
        core.scope(|s| {
            s.spawn(|_| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
        core.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }
}
