//! The execution core: OS worker threads, per-worker work-stealing deques,
//! and scoped task regions.
//!
//! This module is the only place in the shim that uses `unsafe`: a scoped
//! job borrows stack data of the thread that called [`PoolCore::scope`],
//! and its lifetime is erased so it can travel through the `'static` job
//! deques. Safety rests on the scope discipline — `scope` does not return
//! until its completion latch reports every spawned job finished, so the
//! borrowed data is live for the whole execution of every job (the same
//! argument `std::thread::scope` makes).
//!
//! Design (the "static partitioning, dynamic stealing" model):
//!
//! - A pool of size `N` owns `N` OS worker threads and `N` deques, one per
//!   worker, in the Chase–Lev discipline: a worker pushes and pops **its
//!   own** deque at the back (LIFO, cache-hot), idle workers steal from a
//!   **victim's** deque at the front (FIFO, oldest-first). Victims are
//!   probed in a randomized order drawn from a per-worker RNG seeded
//!   deterministically from the worker index, so runs are reproducible.
//! - Jobs submitted from outside the pool (the thread opening a parallel
//!   region) are placed round-robin across the deques; jobs spawned *by a
//!   worker* go to that worker's own deque, where they stay until the
//!   owner pops them or a thief steals them — this is what load-balances
//!   skewed nested work that the old single shared queue serialized.
//! - Chunk *boundaries* never depend on the pool size (see [`crate::iter`]),
//!   only the assignment of chunks to threads does — which is what makes
//!   ordered reductions bitwise reproducible across pool sizes.
//! - A region is a [`Scope`]: spawn borrows, then the creating thread
//!   blocks on the scope's latch (a worker of the same pool instead *helps*
//!   — it drains work until the latch clears, so nested `ThreadPool::scope`
//!   calls cannot deadlock). Panics inside jobs are caught, carried across
//!   the thread boundary, and resumed on the scoping thread.

#![allow(unsafe_code)]

use std::cell::RefCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use dsmatch_check::protocol::deque;
use dsmatch_check::protocol::eventcount::{self, EventcountOps};

use crate::eventcount::Eventcount;
use crate::hint_deque::HintDeque;

/// A type-erased, lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send>;

/// Shared state of one pool: the per-worker deques its workers drain.
///
/// The two synchronization protocols this struct lives by — the hinted
/// deques and the eventcount sleep/wake dance — are *extracted*: their
/// logic lives in `dsmatch_check::protocol` (shared with the model
/// checker that exhaustively verifies them), and this module only calls
/// the protocol functions over the real implementations in
/// [`crate::hint_deque`] and [`crate::eventcount`].
pub(crate) struct PoolCore {
    size: usize,
    /// One deque per worker. The owner pushes/pops at the back; thieves
    /// pop at the front. A `Mutex<VecDeque>` per worker keeps the shim
    /// `unsafe`-minimal while preserving the Chase–Lev access pattern —
    /// the common case (owner pop) contends only with an active thief on
    /// the *same* deque, never with the whole pool, and the atomic length
    /// hint lets sweeps skip empty deques without touching their locks.
    deques: Vec<HintDeque<Job>>,
    /// Successful steals since the pool started (relaxed; test telemetry).
    steals: AtomicU64,
    /// Park/wake rendezvous: workers that sweep empty park here; every
    /// push announces through it. See
    /// `dsmatch_check::protocol::eventcount` for the lost-wakeup
    /// argument.
    ec: Eventcount,
}

impl std::fmt::Debug for PoolCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolCore").field("size", &self.size).finish_non_exhaustive()
    }
}

thread_local! {
    /// On pool worker threads: the owning pool and this worker's index.
    static WORKER: RefCell<Option<(Arc<PoolCore>, usize)>> = const { RefCell::new(None) };
    /// The pool installed by [`crate::ThreadPool::install`] on this thread.
    static INSTALLED: RefCell<Vec<Arc<PoolCore>>> = const { RefCell::new(Vec::new()) };
}

/// True on a pool worker thread (parallel regions must run inline there).
pub(crate) fn in_worker() -> bool {
    WORKER.with(|w| w.borrow().is_some())
}

/// Pool size seen by `current_num_threads` on a worker thread (0 if the
/// current thread is not a worker).
pub(crate) fn worker_pool_size() -> usize {
    WORKER.with(|w| w.borrow().as_ref().map_or(0, |(core, _)| core.size))
}

/// The worker index on a pool worker thread (`None` elsewhere) — the
/// shim's `rayon::current_thread_index`.
pub(crate) fn worker_index() -> Option<usize> {
    WORKER.with(|w| w.borrow().as_ref().map(|&(_, idx)| idx))
}

/// This thread's worker index in `core` specifically, when the thread is a
/// worker of that pool.
fn worker_index_in(core: &Arc<PoolCore>) -> Option<usize> {
    WORKER.with(|w| {
        w.borrow().as_ref().and_then(
            |(owner, idx)| {
                if Arc::ptr_eq(owner, core) {
                    Some(*idx)
                } else {
                    None
                }
            },
        )
    })
}

/// The pool a parallel region on this thread should execute in:
/// the innermost installed pool, else the global pool. `None` on worker
/// threads (nested regions run inline) and when the resolved pool has a
/// single thread (dispatch would be pure overhead).
pub(crate) fn dispatch_pool() -> Option<Arc<PoolCore>> {
    if in_worker() {
        return None;
    }
    let installed = INSTALLED.with(|stack| stack.borrow().last().cloned());
    let core = match installed {
        Some(core) => core,
        None => global_core()?,
    };
    (core.size > 1).then_some(core)
}

/// Size of the pool `dispatch_pool` would resolve to, counting worker
/// threads even when dispatch itself would be declined.
pub(crate) fn ambient_pool_size() -> usize {
    let installed = INSTALLED.with(|stack| stack.borrow().last().map(|c| c.size));
    installed.unwrap_or_else(global_size)
}

/// Push `core` as the innermost installed pool for the duration of `op`.
pub(crate) fn with_installed<R>(core: Arc<PoolCore>, op: impl FnOnce() -> R) -> R {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            INSTALLED.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    INSTALLED.with(|stack| stack.borrow_mut().push(core));
    let _guard = PopOnDrop;
    op()
}

/// The machine default: `RAYON_NUM_THREADS` if set to a positive integer
/// (the same override the real rayon honours), else the available
/// parallelism.
pub(crate) fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The global pool, built lazily. `None` when no pool was ever requested
/// and the default size is 1 — building a one-worker pool would never be
/// dispatched to anyway.
fn global_core() -> Option<Arc<PoolCore>> {
    let slot = global_slot().lock().expect("global pool lock poisoned");
    if let Some(core) = slot.as_ref() {
        return Some(Arc::clone(core));
    }
    drop(slot);
    if default_threads() <= 1 {
        return None;
    }
    let mut slot = global_slot().lock().expect("global pool lock poisoned");
    if slot.is_none() {
        // Failing to spawn the lazy global pool degrades gracefully to
        // inline execution instead of aborting the process.
        if let Ok((core, _workers)) = PoolCore::start(default_threads()) {
            *slot = Some(core);
        } else {
            return None;
        }
    }
    slot.clone()
}

/// Size the global pool would have (without necessarily building it).
pub(crate) fn global_size() -> usize {
    let slot = global_slot().lock().expect("global pool lock poisoned");
    slot.as_ref().map_or_else(default_threads, |c| c.size)
}

/// Replace the global pool with a fresh one of `size` threads. The old
/// pool's workers are told to exit once their deques drain.
pub(crate) fn set_global(size: usize) -> std::io::Result<()> {
    let (core, _workers) = PoolCore::start(size)?;
    let mut slot = global_slot().lock().expect("global pool lock poisoned");
    if let Some(old) = slot.replace(core) {
        old.shutdown();
    }
    Ok(())
}

fn global_slot() -> &'static Mutex<Option<Arc<PoolCore>>> {
    static GLOBAL: OnceLock<Mutex<Option<Arc<PoolCore>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Deterministic per-worker RNG for victim selection (xorshift64*).
/// Seeding from the worker index keeps steal schedules reproducible run to
/// run — the *timing* of steals still varies, but not the probe order.
struct StealRng(u64);

impl StealRng {
    fn new(index: usize) -> Self {
        // SplitMix-style scramble of the index; never zero.
        StealRng((index as u64).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl PoolCore {
    /// Build a core and spawn its `size` workers. The handles are returned
    /// so owned pools ([`crate::ThreadPool`]) can join them on drop; the
    /// global pool drops them (workers exit on shutdown regardless).
    ///
    /// On worker-spawn failure (thread exhaustion), already-spawned
    /// workers are shut down and joined before the error is returned, so
    /// a failed build leaks nothing.
    pub(crate) fn start(size: usize) -> std::io::Result<(Arc<Self>, Vec<JoinHandle<()>>)> {
        let size = size.max(1);
        let core = Arc::new(PoolCore {
            size,
            deques: (0..size).map(|_| HintDeque::new()).collect(),
            steals: AtomicU64::new(0),
            ec: Eventcount::new(),
        });
        let mut workers = Vec::with_capacity(size);
        for k in 0..size {
            let worker_core = Arc::clone(&core);
            match std::thread::Builder::new()
                .name(format!("rayon-shim-{k}"))
                .spawn(move || worker_loop(worker_core, k))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    core.shutdown();
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok((core, workers))
    }

    /// Number of worker threads.
    pub(crate) fn size(&self) -> usize {
        self.size
    }

    /// Successful steals since the pool started (test telemetry — the
    /// counter itself is always maintained, one relaxed add per steal).
    #[cfg(test)]
    pub(crate) fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Push a job onto deque `index` (back — LIFO for the owner, FIFO for
    /// thieves) and wake a parked worker, if any.
    fn push_to(&self, index: usize, job: Job) {
        deque::push(&self.deques[index], job);
        self.announce_work();
    }

    /// Advance the wakeup epoch and wake a parked worker, if any. The
    /// `SeqCst` pair (epoch bump, then sleeper check) against the park
    /// path's (sleeper registration, then epoch re-check) guarantees that
    /// either the pusher sees the sleeper and notifies, or the parking
    /// worker sees the new epoch and re-sweeps — never neither. The
    /// protocol is model-checked over every interleaving (see
    /// `dsmatch_check::protocol::eventcount`).
    fn announce_work(&self) {
        eventcount::announce(&self.ec);
    }

    /// One full work-finding sweep for worker `index`: own deque first
    /// (back, LIFO), then every other deque once in randomized victim
    /// order (steal-half from the front). A successful steal re-homes the
    /// surplus onto the thief's own deque — announced, so other idle
    /// workers can in turn steal from it (logarithmic work diffusion).
    /// `None` means the pool was empty at each probe.
    fn find_work(&self, index: usize, rng: &mut StealRng) -> Option<Job> {
        if let Some(job) = deque::pop(&self.deques[index]) {
            return Some(job);
        }
        if self.size == 1 {
            return None;
        }
        let start = (rng.next() % (self.size as u64 - 1)) as usize;
        for probe in 0..self.size - 1 {
            // Linear probe from a random start, skipping our own deque.
            let mut victim = (start + probe) % (self.size - 1);
            if victim >= index {
                victim += 1;
            }
            let mut surplus = Vec::new();
            if let Some(job) = deque::steal_half(&self.deques[victim], &mut surplus) {
                self.steals.fetch_add(1 + surplus.len() as u64, Ordering::Relaxed);
                if !surplus.is_empty() {
                    // Stolen jobs are older than anything the owner will
                    // push later; `prepend` front-loads them to keep
                    // FIFO-ish order for onward thieves.
                    deque::prepend(&self.deques[index], &mut surplus);
                    self.announce_work();
                }
                return Some(job);
            }
        }
        None
    }

    /// Tell workers to exit once their deques are drained.
    pub(crate) fn shutdown(&self) {
        eventcount::shutdown(&self.ec);
    }

    /// Run `op` with a [`Scope`] whose spawned jobs execute on this pool,
    /// then block until every job has finished. Panics from jobs are
    /// resumed here, after all jobs have completed (so borrowed data is
    /// never freed under a running job, even on unwind).
    pub(crate) fn scope<'scope, OP, R>(self: &Arc<Self>, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            core: Some(Arc::clone(self)),
            state: Arc::new(ScopeState {
                sync: Mutex::new(ScopeSync { pending: 0, panic: None }),
                done: Condvar::new(),
                cursor: AtomicUsize::new(0),
            }),
            _borrow: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        scope.wait();
        let job_panic = {
            let mut sync = scope.state.sync.lock().expect("scope lock poisoned");
            sync.panic.take()
        };
        match result {
            Ok(r) => {
                if let Some(p) = job_panic {
                    resume_unwind(p);
                }
                r
            }
            Err(p) => resume_unwind(p),
        }
    }
}

fn worker_loop(core: Arc<PoolCore>, index: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&core), index)));
    let mut rng = StealRng::new(index);
    loop {
        // Epoch is read *before* the sweep: a push that the sweep misses
        // necessarily advanced the epoch afterwards, so the park below
        // wakes immediately instead of losing the job. (The model checker
        // demonstrates that moving this read after the sweep strands
        // jobs — see `crates/check/tests/model_eventcount.rs`.)
        let seen = core.ec.epoch();
        if let Some(job) = core.find_work(index, &mut rng) {
            // Jobs are panic-wrapped at spawn time, so this call never
            // unwinds into the loop.
            job();
            continue;
        }
        if core.ec.is_shutdown() {
            return;
        }
        eventcount::park(&core.ec, seen);
    }
}

/// Completion latch + first-panic slot shared by a scope and its jobs.
struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
    /// Round-robin cursor for this scope's *external* spawns. Scope-local
    /// (not pool-global) so that identical parallel regions place their
    /// jobs on identical deques run after run — reproducible placement,
    /// with only steal timing left to the scheduler.
    cursor: AtomicUsize,
}

struct ScopeSync {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Run `op` with a scope whose spawns execute inline on the calling
/// thread — the degenerate region used when no multi-thread pool is
/// available for dispatch.
pub(crate) fn inline_scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        core: None,
        state: Arc::new(ScopeState {
            sync: Mutex::new(ScopeSync { pending: 0, panic: None }),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        }),
        _borrow: PhantomData,
    };
    op(&scope)
}

/// A scoped-task region on a pool: see [`crate::ThreadPool::scope`] and
/// [`crate::scope`]. Jobs spawned here may borrow data created before the
/// scope; the scope joins them all before returning.
pub struct Scope<'scope> {
    /// `None` for inline regions: spawns run eagerly on the caller.
    core: Option<Arc<PoolCore>>,
    state: Arc<ScopeState>,
    /// Makes `'scope` invariant, so borrows can't be shortened behind the
    /// region's back.
    _borrow: PhantomData<&'scope mut &'scope ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pool_size", &self.core.as_ref().map_or(1, |c| c.size))
            .finish()
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` into the pool. The closure receives the scope (as in
    /// rayon), so jobs can spawn further jobs.
    ///
    /// Placement: spawns from a worker *of this pool* go to that worker's
    /// own deque (stealable nested work — a skewed job's children load-
    /// balance across the pool); spawns from any other thread — the scoping
    /// thread, or a worker of a different pool — are distributed
    /// round-robin. Inline regions run the body eagerly.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let Some(core) = &self.core else {
            body(self);
            return;
        };
        {
            let mut sync = self.state.sync.lock().expect("scope lock poisoned");
            sync.pending += 1;
        }
        let handle = Scope {
            core: Some(Arc::clone(core)),
            state: Arc::clone(&self.state),
            _borrow: PhantomData,
        };
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| body(&handle)));
            let mut sync = state.sync.lock().expect("scope lock poisoned");
            if let Err(payload) = result {
                sync.panic.get_or_insert(payload);
            }
            sync.pending -= 1;
            if sync.pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: `PoolCore::scope` blocks on the latch until `pending`
        // returns to zero, i.e. until this job (and any job it spawns)
        // has run to completion, before any data borrowed for `'scope`
        // can be dropped — including when the scope body itself panics.
        // The erased box therefore never outlives its borrows.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        match worker_index_in(core) {
            // A worker of this pool spawns onto its own deque; any other
            // thread distributes round-robin from the scope-local cursor.
            Some(index) => core.push_to(index, job),
            None => {
                let k = self.state.cursor.fetch_add(1, Ordering::Relaxed) % core.size;
                core.push_to(k, job);
            }
        }
    }

    /// Block until every spawned job has completed.
    ///
    /// A worker of the scope's own pool does not park — it *helps*,
    /// draining pool work (its own nested jobs first, then steals) until
    /// the latch clears, so nested `ThreadPool::scope` calls from inside a
    /// job make progress even on a pool of one thread.
    fn wait(&self) {
        if let Some(core) = &self.core {
            if let Some(index) = worker_index_in(core) {
                let mut rng = StealRng::new(index);
                loop {
                    if let Some(job) = core.find_work(index, &mut rng) {
                        job();
                        continue;
                    }
                    // No runnable work: park briefly on the latch instead
                    // of spinning — the timeout bounds how late we notice
                    // *new* stealable work (the latch itself wakes us when
                    // the last pending job finishes).
                    let sync = self.state.sync.lock().expect("scope lock poisoned");
                    if sync.pending == 0 {
                        return;
                    }
                    let _ = self
                        .state
                        .done
                        .wait_timeout(sync, std::time::Duration::from_millis(1))
                        .expect("scope lock poisoned");
                }
            }
        }
        let mut sync = self.state.sync.lock().expect("scope lock poisoned");
        while sync.pending > 0 {
            sync = self.state.done.wait(sync).expect("scope lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_timeout;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn drain(core: Arc<PoolCore>, workers: Vec<JoinHandle<()>>) {
        core.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn scope_runs_jobs_on_worker_threads() {
        let (core, workers) = PoolCore::start(3).unwrap();
        let caller = std::thread::current().id();
        let ids = Mutex::new(Vec::new());
        core.scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    ids.lock().unwrap().push(std::thread::current().id());
                });
            }
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids.len(), 8);
        assert!(ids.iter().all(|&id| id != caller), "jobs must run off the calling thread");
        drain(core, workers);
    }

    #[test]
    fn scope_joins_before_returning() {
        let (core, workers) = PoolCore::start(2).unwrap();
        let counter = AtomicUsize::new(0);
        core.scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        drain(core, workers);
    }

    #[test]
    fn nested_spawn_from_job_completes() {
        let (core, workers) = PoolCore::start(1).unwrap();
        let hits = AtomicUsize::new(0);
        core.scope(|s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::Relaxed);
                // Goes to the worker's own deque; the worker pops it after
                // this job returns — must not deadlock on size 1.
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        drain(core, workers);
    }

    #[test]
    fn deeply_nested_spawns_complete_across_pool_sizes() {
        for size in [1usize, 2, 4, 8] {
            let (core, workers) = PoolCore::start(size).unwrap();
            let hits = AtomicUsize::new(0);
            core.scope(|s| {
                for _ in 0..4 {
                    s.spawn(|s| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        s.spawn(|s| {
                            hits.fetch_add(1, Ordering::Relaxed);
                            s.spawn(|_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 12, "pool size {size}");
            drain(core, workers);
        }
    }

    #[test]
    fn job_panic_propagates_to_scope() {
        let (core, workers) = PoolCore::start(2).unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            core.scope(|s| {
                s.spawn(|_| panic!("boom in job"));
            });
        }));
        assert!(result.is_err(), "scope must re-raise a job panic");
        // The pool survives a panicking job.
        let ok = AtomicUsize::new(0);
        core.scope(|s| {
            s.spawn(|_| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
        drain(core, workers);
    }

    #[test]
    fn panic_in_stolen_nested_job_propagates() {
        // The panicking job is spawned from a worker (lands on its own
        // deque, eligible for stealing); the panic must still surface at
        // the scoping thread, at every pool size.
        for size in [2usize, 4, 8] {
            let (core, workers) = PoolCore::start(size).unwrap();
            let result = catch_unwind(AssertUnwindSafe(|| {
                core.scope(|s| {
                    for k in 0..2 * size {
                        s.spawn(move |s| {
                            s.spawn(move |_| {
                                if k == 1 {
                                    panic!("boom in nested job");
                                }
                            });
                        });
                    }
                });
            }));
            assert!(result.is_err(), "nested panic lost at pool size {size}");
            drain(core, workers);
        }
    }

    #[test]
    fn external_spawns_cover_all_deques_round_robin() {
        // N external spawns in a fresh scope land on N distinct deques
        // (scope-local cursor starts at 0), and a worker drains its own
        // deque before stealing — so N tasks that rendezvous must be held
        // by N distinct workers. Exactness of this placement is what the
        // engine's barrier-based `observed_parallelism` probe relies on.
        let n = 4usize;
        let (core, workers) = PoolCore::start(n).unwrap();
        let arrived = AtomicUsize::new(0);
        let ids = Mutex::new(std::collections::HashSet::new());
        core.scope(|s| {
            for _ in 0..n {
                s.spawn(|_| {
                    arrived.fetch_add(1, Ordering::SeqCst);
                    let deadline = std::time::Instant::now() + test_timeout(10);
                    while arrived.load(Ordering::SeqCst) < n && std::time::Instant::now() < deadline
                    {
                        std::thread::yield_now();
                    }
                    ids.lock().unwrap().insert(std::thread::current().id());
                });
            }
        });
        assert_eq!(ids.into_inner().unwrap().len(), n, "one task per worker, exactly");
        drain(core, workers);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// Skewed-workload property: one giant job that *spawns* `tiny`
        /// small jobs (they land on the giant's own deque) and stays busy
        /// until every one of them has completed. Its worker never returns
        /// to its deque in the meantime, so each tiny job can only have
        /// been executed by a *thief* — steals must occur (at least
        /// `tiny`), and nothing may be lost. Under the old shared-queue
        /// scheduler this exact shape serialized: nested spawns ran inline
        /// on the giant job's worker.
        #[test]
        fn skewed_workload_steals_and_completes(size in 2usize..9, extra in 0usize..48) {
            let tiny = size + extra;
            let (core, workers) = PoolCore::start(size).unwrap();
            let before = core.steal_count();
            let done_tiny = AtomicUsize::new(0);
            let giant_done = AtomicUsize::new(0);
            core.scope(|s| {
                s.spawn(|s| {
                    // The "giant chunk": spawn the tiny jobs onto this
                    // worker's deque, then occupy the worker until they
                    // have all completed (bounded, to fail loudly rather
                    // than hang on a scheduler bug).
                    for _ in 0..tiny {
                        s.spawn(|_| {
                            done_tiny.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    let deadline = std::time::Instant::now() + test_timeout(10);
                    while done_tiny.load(Ordering::SeqCst) < tiny
                        && std::time::Instant::now() < deadline
                    {
                        std::thread::yield_now();
                    }
                    giant_done.fetch_add(1, Ordering::SeqCst);
                });
            });
            proptest::prop_assert_eq!(done_tiny.load(Ordering::SeqCst), tiny);
            proptest::prop_assert_eq!(giant_done.load(Ordering::SeqCst), 1);
            let stolen = core.steal_count() - before;
            proptest::prop_assert!(
                stolen >= tiny as u64,
                "1 giant spawning {} tiny jobs on {} workers: every tiny job must be stolen \
                 (got {} steals)",
                tiny, size, stolen
            );
            drain(core, workers);
        }
    }

    #[test]
    fn steal_rng_is_deterministic() {
        let draws = |index: usize| {
            let mut rng = StealRng::new(index);
            (0..8).map(|_| rng.next()).collect::<Vec<_>>()
        };
        assert_eq!(draws(3), draws(3), "same worker index ⇒ same victim sequence");
        assert_ne!(draws(0), draws(1), "distinct workers draw distinct sequences");
    }
}
