//! The length-hinted work-stealing deque, as a [`DequeOps`]
//! implementation over `Mutex<VecDeque<T>>` plus an atomic length hint.
//!
//! The access protocol — owner push/pop at the back, thief steal-half at
//! the front, hint written only under the lock, lock-free empty fast
//! paths — lives in `dsmatch_check::protocol::deque`, shared verbatim
//! with the model checker that verifies no job is lost or duplicated
//! across every interleaving. This module only binds the protocol's
//! operations to the real primitives.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use dsmatch_check::protocol::deque::DequeOps;

/// A mutexed deque with a lock-free occupancy hint.
///
/// `len` is updated inside the deque lock but read without it: a probe
/// that reads a stale 0 merely skips the deque this sweep — the epoch
/// protocol in the pool's worker loop guarantees the push that made it
/// non-empty also advanced the wakeup epoch, so no job is ever stranded.
/// (Both halves of that argument are model-checked; see the README's
/// "Static analysis & verification".)
pub(crate) struct HintDeque<T> {
    jobs: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

impl<T> HintDeque<T> {
    pub(crate) fn new() -> Self {
        HintDeque { jobs: Mutex::new(VecDeque::new()), len: AtomicUsize::new(0) }
    }
}

impl<T> DequeOps for HintDeque<T> {
    type Item = T;
    // Jobs are plain boxed closures — a poisoned deque holds nothing
    // torn, and one panicked worker must not strand every job behind a
    // poisoned lock.
    type Guard<'a>
        = MutexGuard<'a, VecDeque<T>>
    where
        Self: 'a;

    fn hint(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
    fn set_hint(&self, _guard: &mut MutexGuard<'_, VecDeque<T>>, len: usize) {
        self.len.store(len, Ordering::Release);
    }
    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.jobs.lock().unwrap_or_else(|p| p.into_inner())
    }
    fn len(&self, guard: &MutexGuard<'_, VecDeque<T>>) -> usize {
        guard.len()
    }
    fn push_back(&self, guard: &mut MutexGuard<'_, VecDeque<T>>, item: T) {
        guard.push_back(item);
    }
    fn push_front(&self, guard: &mut MutexGuard<'_, VecDeque<T>>, item: T) {
        guard.push_front(item);
    }
    fn pop_back(&self, guard: &mut MutexGuard<'_, VecDeque<T>>) -> Option<T> {
        guard.pop_back()
    }
    fn pop_front(&self, guard: &mut MutexGuard<'_, VecDeque<T>>) -> Option<T> {
        guard.pop_front()
    }
}
