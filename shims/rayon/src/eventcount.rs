//! The pool's eventcount, as a [`EventcountOps`] implementation over real
//! `std` primitives.
//!
//! The protocol logic itself — announce, park, shutdown, and the ordering
//! argument that makes them lose no wakeups — lives in
//! `dsmatch_check::protocol::eventcount`, shared verbatim with the model
//! checker that exhaustively verifies it (see the README's "Static
//! analysis & verification"). This module only binds the protocol's
//! operations to `AtomicU64`/`AtomicUsize`/`AtomicBool`, a data-less
//! `Mutex` and a `Condvar`.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use dsmatch_check::protocol::eventcount::EventcountOps;

/// Real eventcount state: the atomics the protocol reasons about plus
/// the sleep rendezvous. All atomic accesses are `SeqCst` — the protocol
/// is verified under sequential consistency and the eventcount is far
/// off the hot path (pushers skip it entirely while `sleepers` is zero).
pub(crate) struct Eventcount {
    /// Wakeup epoch: bumped on every work announcement.
    epoch: AtomicU64,
    /// Workers parked (or committed to parking, under the sleep lock).
    sleepers: AtomicUsize,
    /// Latched true when the pool is told to exit.
    shutdown: AtomicBool,
    /// Holds no data — the state the condvar guards lives in the atomics
    /// above, re-checked under this lock before every wait.
    sleep: Mutex<()>,
    work_available: Condvar,
}

impl Eventcount {
    pub(crate) fn new() -> Self {
        Eventcount {
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep: Mutex::new(()),
            work_available: Condvar::new(),
        }
    }
}

impl EventcountOps for Eventcount {
    // The guarded data is `()`: poison carries no torn state, so a
    // panicked worker must not wedge every other worker's park/notify.
    type Guard<'a> = MutexGuard<'a, ()>;

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }
    fn sleepers(&self) -> usize {
        self.sleepers.load(Ordering::SeqCst)
    }
    fn add_sleeper(&self) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
    }
    fn remove_sleeper(&self) {
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
    fn set_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
    fn lock_sleep(&self) -> MutexGuard<'_, ()> {
        self.sleep.lock().unwrap_or_else(|p| p.into_inner())
    }
    fn wait_sleep<'a>(&'a self, guard: MutexGuard<'a, ()>) -> MutexGuard<'a, ()> {
        self.work_available.wait(guard).unwrap_or_else(|p| p.into_inner())
    }
    fn notify_one(&self) {
        self.work_available.notify_one();
    }
    fn notify_all(&self) {
        self.work_available.notify_all();
    }
}
