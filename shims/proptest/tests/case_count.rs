//! The macro must run exactly `cases` iterations and thread RNG state
//! through every strategy.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static COUNT: AtomicU32 = AtomicU32::new(0);

// No `#[test]` attribute: the generated zero-argument function is invoked
// (and its case count checked) by the real test below, avoiding any
// dependence on test execution order.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(123))]

    fn runs_exactly_cases_times(x in 0u64..7, v in proptest::collection::vec(0u32..3, 2..5)) {
        COUNT.fetch_add(1, Ordering::Relaxed);
        prop_assert!(x < 7);
        prop_assert!((2..5).contains(&v.len()));
    }
}

#[test]
fn macro_runs_configured_case_count() {
    runs_exactly_cases_times();
    assert_eq!(COUNT.load(Ordering::Relaxed), 123);
}
