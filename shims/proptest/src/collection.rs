//! Collection strategies (`proptest::collection`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec()`]: an exact size or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound; always `> min`.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self { min: exact, max: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector whose elements come from `element` and whose length comes from
/// `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            assert_eq!(vec(0u8..5, 7usize).generate(&mut rng).len(), 7);
            let l = vec(0u8..5, 2..6).generate(&mut rng).len();
            assert!((2..6).contains(&l));
        }
    }
}
