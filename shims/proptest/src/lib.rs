//! # proptest (offline shim)
//!
//! A **deterministic** stand-in for the subset of
//! [`proptest`](https://docs.rs/proptest)'s API the `dsmatch` workspace uses.
//! The build environment has no crates.io access, so the workspace vendors
//! this shim; restoring the real crate is a one-line change in the root
//! `Cargo.toml`.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the ordinary assert
//!   message; the case is reproducible because the RNG seed is derived from
//!   the test's module path and name, never from ambient entropy.
//! - **Pure random sampling** (no bias towards boundary values), driven by a
//!   SplitMix64 stream.
//! - [`Strategy`] is a one-method trait (`generate`) plus the combinators the
//!   workspace calls (`prop_map`, `prop_flat_map`); strategies are evaluated
//!   eagerly per case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

pub mod bool;
pub mod collection;
pub mod option;

/// Glob-import target mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Deterministic SplitMix64 stream backing every strategy.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }

    /// Derive a stable seed from a test's fully qualified name, so every
    /// `proptest!` test replays the same cases on every run and platform.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a, then one SplitMix64 round to spread the bits.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }
}

/// Runtime knobs for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Keep only values satisfying `pred` (resamples; gives up after a
    /// bounded number of attempts to avoid infinite loops).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, whence, pred }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 10000 consecutive samples", self.whence);
    }
}

/// Always produce a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy producing any value of a primitive type from raw RNG output.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive { _marker: std::marker::PhantomData }
    }
}

/// The canonical strategy for `A` (mirrors `proptest::prelude::any`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Assert inside a property (plain `assert!` here: no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn it_holds(x in 0usize..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
///
/// Each test runs `cases` deterministic cases seeded from the test's name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let s =
            (1usize..5).prop_flat_map(|n| collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, (a, b) in (0u32..4, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(a < 4);
            let _ = b;
            prop_assume!(x != 1000); // never skips, exercises the macro
            let y = x;
            prop_assert_eq!(y, x);
        }
    }
}
