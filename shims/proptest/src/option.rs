//! Option strategies (`proptest::option`).

use crate::{Strategy, TestRng};

/// Strategy producing `Some` from an inner strategy or `None`.
#[derive(Clone, Copy, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Real proptest defaults to P(Some) = 0.75; any fixed split works
        // for the workspace's tests, this one exercises None often.
        if rng.next_f64() < 0.75 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some` of the inner strategy's values, or `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_seed(5);
        let s = of(0u32..10);
        let vals: Vec<Option<u32>> = (0..500).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().flatten().all(|&v| v < 10));
    }
}
