//! Boolean strategies (`proptest::bool`).

use crate::{Strategy, TestRng};

/// Strategy producing `true` with a fixed probability.
#[derive(Clone, Copy, Debug)]
pub struct Weighted {
    probability: f64,
}

impl Strategy for Weighted {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_f64() < self.probability
    }
}

/// `true` with probability `probability_true` (clamped to `[0, 1]`).
pub fn weighted(probability_true: f64) -> Weighted {
    Weighted { probability: probability_true.clamp(0.0, 1.0) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_is_roughly_calibrated() {
        let mut rng = TestRng::from_seed(11);
        let s = weighted(0.3);
        let hits = (0..10_000).filter(|_| s.generate(&mut rng)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn extremes_are_constant() {
        let mut rng = TestRng::from_seed(1);
        assert!(!(0..100).any(|_| weighted(0.0).generate(&mut rng)));
        assert!((0..100).all(|_| weighted(1.0).generate(&mut rng)));
    }
}
