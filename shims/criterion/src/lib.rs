//! # criterion (offline shim)
//!
//! A minimal stand-in for the subset of
//! [`criterion`](https://docs.rs/criterion)'s API the `dsmatch` workspace
//! uses in its `benches/` targets. The build environment has no crates.io
//! access, so the workspace vendors this shim; restoring the real crate is a
//! one-line change in the root `Cargo.toml`.
//!
//! Instead of criterion's statistical machinery, every benchmark runs a
//! fixed small number of timed iterations and prints one line per benchmark:
//!
//! ```text
//! bench group/id ... median 12.345 ms (n = 3)
//! ```
//!
//! Honour `DSMATCH_BENCH_ITERS` to raise the per-benchmark iteration count
//! when more stable numbers are wanted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for API compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many timed iterations each benchmark runs.
fn measured_iters() -> usize {
    std::env::var("DSMATCH_BENCH_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1)
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just a parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Per-iteration timing hook handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, running it a small fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.samples.clear();
        // One untimed warm-up pass, then the measured passes.
        black_box(f());
        for _ in 0..measured_iters() {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Duration {
        let mut v = self.samples.clone();
        v.sort();
        v.get(v.len() / 2).copied().unwrap_or_default()
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let med = b.median();
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(", {:.3e} elems/s", n as f64 / med.as_secs_f64().max(1e-12))
        }
        Some(Throughput::Bytes(n)) => {
            format!(", {:.3e} B/s", n as f64 / med.as_secs_f64().max(1e-12))
        }
        None => String::new(),
    };
    let name = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("bench {name} ... median {med:.3?} (n = {}{extra})", b.samples.len());
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report("", &id.id, &b, None);
        self
    }
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::default();
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.samples.len(), measured_iters());
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(5));
        g.bench_function("one", |b| b.iter(|| black_box(0u8)));
        g.bench_with_input(BenchmarkId::new("two", 1), &41, |b, &x| b.iter(|| black_box(x + 1)));
        g.finish();
    }
}
